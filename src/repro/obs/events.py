"""The structured event bus: spans, counters, and hot-spot accumulators.

Design constraints, in order:

1. **Zero overhead when disabled.**  Every instrumentation point in the
   engines reads the module-level :data:`ENABLED` flag *before*
   computing timestamps or allocating anything; a disabled probe is one
   module-attribute read and a branch.

2. **Lock-aware, contention-free recording.**  The parallel engine's
   match threads report concurrently.  Each thread writes into its own
   :class:`_WorkerBuffer` (reached through a ``threading.local``), so
   recording never takes a lock — the only synchronized operation is
   buffer *registration*, once per thread per epoch.  This matters
   because the layer instruments spin locks themselves: a lock inside
   the event path would perturb exactly the contention it measures.

3. **Bounded memory.**  Span buffers are capped per worker
   (:data:`DEFAULT_MAX_EVENTS`); overflowing spans are counted in
   ``dropped`` instead of stored.  Hot-path aggregates (per-node,
   per-lock, counters) are fixed-size dictionaries keyed by node id /
   lock label and never grow with run length.

Timestamps are monotonic ``time.perf_counter_ns`` integers; spans are
plain tuples ``(t0_ns, dur_ns, cat, name, args)``.  ``snapshot()``
merges all live buffers into an immutable :class:`ObsSnapshot` without
stopping collection.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from time import perf_counter_ns
from typing import Any, Dict, List, Optional, Tuple

#: THE flag.  Instrumentation sites check this before any allocation:
#: ``if events.ENABLED: ...``.  Toggle through :func:`enable` /
#: :func:`disable` only.
ENABLED = False

#: Per-worker span cap; beyond it spans are dropped (and counted).
DEFAULT_MAX_EVENTS = 200_000

#: Monotonic nanosecond clock used for every span boundary.
now = perf_counter_ns

_SPAN = Tuple[int, int, str, str, Optional[dict]]


class _WorkerBuffer:
    """One thread's private event storage.  Never shared for writing."""

    __slots__ = ("name", "epoch", "max_events", "spans", "dropped",
                 "nodes", "locks", "counters")

    def __init__(self, name: str, epoch: int, max_events: int) -> None:
        self.name = name
        self.epoch = epoch
        self.max_events = max_events
        self.spans: List[_SPAN] = []
        self.dropped = 0
        # node_id -> [kind, activations, self_ns, tokens_examined, emitted]
        self.nodes: Dict[int, list] = {}
        # label -> [acquires, contended, wait_ns, hold_ns]
        self.locks: Dict[str, list] = {}
        self.counters: Dict[str, int] = {}


_tls = threading.local()
_reg_lock = threading.Lock()
_registry: List[_WorkerBuffer] = []
_epoch = 0
_max_events = DEFAULT_MAX_EVENTS
#: Drops carried over from retired buffers (cleared registries, dead
#: epochs) so :func:`dropped_total` stays monotonic — a Prometheus
#: counter must never shrink just because a capture was reset.
_retired_dropped = 0


def _buffer() -> _WorkerBuffer:
    buf = getattr(_tls, "buf", None)
    if buf is None or buf.epoch != _epoch:
        buf = _WorkerBuffer(threading.current_thread().name, _epoch, _max_events)
        with _reg_lock:
            _registry.append(buf)
        _tls.buf = buf
    return buf


# -- control -----------------------------------------------------------------


def enable(max_events_per_worker: int = DEFAULT_MAX_EVENTS) -> None:
    """Turn collection on (idempotent).  Existing data is kept; call
    :func:`reset` first for a fresh capture."""
    global ENABLED, _max_events
    _max_events = max_events_per_worker
    ENABLED = True


def disable() -> None:
    """Turn collection off.  Buffers stay readable via :func:`snapshot`."""
    global ENABLED
    ENABLED = False


def enabled() -> bool:
    return ENABLED


def current_max_events() -> int:
    """The per-worker span cap in force (what :func:`enable` last set)."""
    return _max_events


def dropped_total() -> int:
    """Spans ever dropped to the per-worker buffer caps: live buffers
    plus drops retained from retired ones, so the value is monotonic
    over a process lifetime (it backs the Prometheus
    ``repro_obs_dropped_events_total`` counter, which must never go
    backwards across capture resets).  Cheaper than :func:`snapshot`
    (no span copying), suited to hot exposition paths like
    ``serve stats``.  Per-capture drop counts live on
    :attr:`ObsSnapshot.dropped` instead."""
    with _reg_lock:
        return _retired_dropped + sum(buf.dropped for buf in _registry)


def reset() -> None:
    """Drop all recorded data.  Threads re-register lazily (their cached
    buffers carry a stale epoch and are abandoned on next use).  Drop
    counts from the retiring buffers are folded into the monotonic
    :func:`dropped_total` before the registry clears."""
    global _epoch, _retired_dropped
    with _reg_lock:
        _epoch += 1
        _retired_dropped += sum(buf.dropped for buf in _registry)
        _registry.clear()


# -- recording (callers must have checked ENABLED) ---------------------------


def span(cat: str, name: str, t0: int, t1: int, args: Optional[dict] = None) -> None:
    """One completed duration event ``[t0, t1]`` (nanoseconds)."""
    buf = _buffer()
    if len(buf.spans) >= buf.max_events:
        buf.dropped += 1
        return
    buf.spans.append((t0, t1 - t0, cat, name, args))


def count(name: str, n: int = 1) -> None:
    """Bump a named counter on the calling thread's buffer."""
    counters = _buffer().counters
    counters[name] = counters.get(name, 0) + n


def node_hit(node_id: int, kind: str, dur_ns: int, examined: int, emitted: int) -> None:
    """One node activation: self time plus size features, aggregated
    per node so a million-activation run stays bounded."""
    nodes = _buffer().nodes
    agg = nodes.get(node_id)
    if agg is None:
        nodes[node_id] = [kind, 1, dur_ns, examined, emitted]
    else:
        agg[1] += 1
        agg[2] += dur_ns
        agg[3] += examined
        agg[4] += emitted


def lock_hit(label: str, wait_ns: int, hold_ns: int, contended: bool) -> None:
    """One completed lock acquire/release pair, aggregated per label."""
    locks = _buffer().locks
    agg = locks.get(label)
    if agg is None:
        locks[label] = [1, 1 if contended else 0, wait_ns, hold_ns]
    else:
        agg[0] += 1
        if contended:
            agg[1] += 1
        agg[2] += wait_ns
        agg[3] += hold_ns


# -- snapshots ---------------------------------------------------------------


@dataclass
class ObsSnapshot:
    """A merged, point-in-time copy of every worker's buffer."""

    #: worker display name -> list of spans (t0_ns, dur_ns, cat, name, args)
    workers: Dict[str, List[_SPAN]] = field(default_factory=dict)
    #: node_id -> [kind, activations, self_ns, tokens_examined, emitted]
    nodes: Dict[int, list] = field(default_factory=dict)
    #: lock label -> [acquires, contended, wait_ns, hold_ns]
    locks: Dict[str, list] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    dropped: int = 0

    @property
    def n_spans(self) -> int:
        return sum(len(s) for s in self.workers.values())

    def spans_by_cat(self, cat: str) -> List[_SPAN]:
        return [s for spans in self.workers.values() for s in spans if s[2] == cat]


def snapshot() -> ObsSnapshot:
    """Merge all live buffers.  Collection keeps running; concurrent
    writers may add events not seen by this snapshot, never corrupt it."""
    snap = ObsSnapshot()
    with _reg_lock:
        buffers = list(_registry)
    for buf in buffers:
        name = buf.name
        if name in snap.workers:  # two threads with one name (rare)
            name = f"{name}#{sum(1 for k in snap.workers if k.split('#')[0] == buf.name)}"
        snap.workers[name] = list(buf.spans)
        snap.dropped += buf.dropped
        for node_id, agg in buf.nodes.items():
            have = snap.nodes.get(node_id)
            if have is None:
                snap.nodes[node_id] = list(agg)
            else:
                have[1] += agg[1]
                have[2] += agg[2]
                have[3] += agg[3]
                have[4] += agg[4]
        for label, agg in buf.locks.items():
            have = snap.locks.get(label)
            if have is None:
                snap.locks[label] = list(agg)
            else:
                for i in range(4):
                    have[i] += agg[i]
        for key, n in buf.counters.items():
            snap.counters[key] = snap.counters.get(key, 0) + n
    return snap
