"""Per-session / per-tenant resource metering with SLO tracking.

The bus (:mod:`repro.obs.events`) records *everything* and costs
memory proportional to event count; the meter records *aggregates* —
O(sessions + tenants) regardless of run length — which is what a
long-lived multi-tenant server can afford to keep always-on.  Every
quantity lands twice, under the owning session id and under its tenant
label, so fairness questions ("which tenant burned the match time?")
read straight off the snapshot.

Counters per account (all monotonic within a meter epoch):

========================  ====================================================
``match_s``               seconds inside ``Matcher.process_changes``
``select_s``              seconds inside conflict resolution
``act_s``                 seconds executing RHS actions
``firings``               productions fired
``wm_changes``            WM deltas pushed through the match network
``queue_wait_s``          engine task queue-wait + serve inbox wait
``ipc_bytes``             pickled bytes shipped over mp pipes (dispatch
                          payloads + flush replies), batch granularity
``txns``                  transactions completed (any outcome)
``rejected_busy``         transactions bounced by the bounded inbox
``rejected_budget``       transactions refused for an exhausted budget
``dropped_events``        obs-bus span drops attributed to this request
========================  ====================================================

Latency is tracked per account as a fixed-bucket **histogram**
(:data:`BUCKETS_MS`) carrying one exemplar per bucket — the last
``(value_ms, request_id, unix_time)`` that landed there, which is what
the Prometheus exposition renders as OpenMetrics trace exemplars — plus
a bounded ring of exact samples for nearest-rank percentiles.  Meter
transaction latency is **submit→done** (inbox queue-wait + execution),
so it reconciles with the client-observed latency loadgen reports; the
serve layer's own ``SessionCounters.latency`` remains execution-only.

**SLO objectives** (:class:`SLObjective`) declare "fraction ``goal`` of
transactions must finish under ``target_ms``".  The snapshot reports,
per account and objective, the achieved fraction and the **burn rate**
``violation_fraction / (1 - goal)`` — 1.0 means exactly spending the
error budget, >1 means burning it faster than allowed.

Like the bus, the meter is module-global with an ``ENABLED`` flag read
once per unit of work; disabled metering is a bool test.  Mutation from
engine worker threads uses plain ``dict`` read-modify-write — int
additions race benignly under the GIL at worst losing one increment,
which is acceptable for aggregate accounting and keeps locks out of the
match hot path.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

METER_SCHEMA = "repro.meter/1"

#: Histogram upper bounds in milliseconds (le); +Inf is implicit.
BUCKETS_MS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0
)

#: Exact-sample ring size per account for nearest-rank percentiles.
SAMPLE_CAPACITY = 4096

COUNTER_NAMES = (
    "match_s", "select_s", "act_s", "firings", "wm_changes",
    "queue_wait_s", "ipc_bytes", "txns",
    "rejected_busy", "rejected_budget", "dropped_events",
)

_PHASE_COUNTER = {"match": "match_s", "select": "select_s", "act": "act_s"}


@dataclass(frozen=True)
class SLObjective:
    """``goal`` fraction of transactions must complete under ``target_ms``."""

    name: str
    target_ms: float
    goal: float  # e.g. 0.99

    def to_json(self) -> Dict[str, Any]:
        return {"name": self.name, "target_ms": self.target_ms,
                "goal": self.goal}


#: Default objective: matches the ROADMAP's interactive-serving bar.
DEFAULT_OBJECTIVES = (SLObjective("txn_p99", target_ms=250.0, goal=0.99),)


def _nearest_rank(sorted_vals: Sequence[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    rank = max(1, int(-(-q * len(sorted_vals) // 1)))  # ceil without math
    return sorted_vals[min(rank, len(sorted_vals)) - 1]


class Histogram:
    """Fixed-bucket latency histogram with per-bucket exemplars."""

    __slots__ = ("counts", "inf_count", "sum_ms", "total", "exemplars")

    def __init__(self) -> None:
        self.counts = [0] * len(BUCKETS_MS)
        self.inf_count = 0
        self.sum_ms = 0.0
        self.total = 0
        # bucket index (len(BUCKETS_MS) == +Inf) -> (value_ms, request_id, unix)
        self.exemplars: Dict[int, Tuple[float, str, float]] = {}

    def observe(self, value_ms: float, request_id: str = "") -> None:
        self.sum_ms += value_ms
        self.total += 1
        idx = len(BUCKETS_MS)
        for i, le in enumerate(BUCKETS_MS):
            if value_ms <= le:
                idx = i
                break
        if idx == len(BUCKETS_MS):
            self.inf_count += 1
        else:
            self.counts[idx] += 1
        if request_id:
            self.exemplars[idx] = (value_ms, request_id, time.time())

    def cumulative(self) -> List[int]:
        """Cumulative counts per bucket (Prometheus ``le`` semantics),
        +Inf last — monotone non-decreasing by construction."""
        out, acc = [], 0
        for c in self.counts:
            acc += c
            out.append(acc)
        out.append(acc + self.inf_count)
        return out

    def under_ms(self, target_ms: float) -> int:
        """How many observations were <= target_ms, resolved at bucket
        granularity (the tightest bucket bound <= target counts)."""
        acc = 0
        for le, c in zip(BUCKETS_MS, self.counts):
            if le <= target_ms:
                acc += c
        return acc

    def to_json(self) -> Dict[str, Any]:
        return {
            "buckets_ms": list(BUCKETS_MS),
            "counts": list(self.counts) + [self.inf_count],
            "sum_ms": self.sum_ms,
            "count": self.total,
            "exemplars": {
                str(i): {"value_ms": v, "request_id": r, "unix": t}
                for i, (v, r, t) in sorted(self.exemplars.items())
            },
        }


class MeterAccount:
    """Aggregates for one session or one tenant."""

    __slots__ = ("counters", "hist", "_samples", "_sample_i")

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {n: 0 for n in COUNTER_NAMES}
        self.hist = Histogram()
        self._samples: List[float] = []
        self._sample_i = 0

    def add(self, name: str, n: float = 1) -> None:
        # dict get+set: benign race from worker threads (see module doc)
        self.counters[name] = self.counters.get(name, 0) + n

    def observe_txn(self, seconds: float, request_id: str = "") -> None:
        ms = seconds * 1e3
        self.counters["txns"] += 1
        self.hist.observe(ms, request_id)
        if len(self._samples) < SAMPLE_CAPACITY:
            self._samples.append(ms)
        else:
            self._samples[self._sample_i] = ms
            self._sample_i = (self._sample_i + 1) % SAMPLE_CAPACITY

    def percentiles(self) -> Dict[str, float]:
        vals = sorted(self._samples)
        return {
            "p50_ms": _nearest_rank(vals, 0.50),
            "p95_ms": _nearest_rank(vals, 0.95),
            "p99_ms": _nearest_rank(vals, 0.99),
        }

    def slo_report(self, objectives: Sequence[SLObjective]) -> List[Dict[str, Any]]:
        out = []
        for obj in objectives:
            total = self.hist.total
            good = self.hist.under_ms(obj.target_ms)
            achieved = (good / total) if total else 1.0
            violation = 1.0 - achieved
            budget = 1.0 - obj.goal
            burn = (violation / budget) if budget > 0 else (
                0.0 if violation == 0 else float("inf"))
            out.append({
                "objective": obj.to_json(),
                "total": total,
                "good": good,
                "achieved": achieved,
                "burn_rate": burn,
                "met": achieved >= obj.goal,
            })
        return out

    def to_json(self, objectives: Sequence[SLObjective]) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"counters": dict(self.counters)}
        doc.update(self.percentiles())
        doc["latency"] = self.hist.to_json()
        doc["slo"] = self.slo_report(objectives)
        return doc


class Meter:
    """Session + tenant account maps under one set of objectives."""

    def __init__(self, objectives: Sequence[SLObjective] = DEFAULT_OBJECTIVES):
        self.objectives: Tuple[SLObjective, ...] = tuple(objectives)
        self.sessions: Dict[str, MeterAccount] = {}
        self.tenants: Dict[str, MeterAccount] = {}
        self._session_tenant: Dict[str, str] = {}
        self._lock = threading.Lock()  # guards account-map insertion only

    def register_session(self, session_id: str, tenant: str) -> None:
        with self._lock:
            self._session_tenant[session_id] = tenant
            self.sessions.setdefault(session_id, MeterAccount())
            self.tenants.setdefault(tenant, MeterAccount())

    def _accounts(self, session_id: str, tenant: Optional[str]) -> Tuple[MeterAccount, ...]:
        if tenant is None:
            tenant = self._session_tenant.get(session_id, "default")
        s = self.sessions.get(session_id)
        t = self.tenants.get(tenant)
        if s is None or t is None:
            with self._lock:
                s = self.sessions.setdefault(session_id, MeterAccount())
                t = self.tenants.setdefault(tenant, MeterAccount())
                self._session_tenant.setdefault(session_id, tenant)
        return (s, t)

    def add(self, session_id: str, name: str, n: float = 1,
            tenant: Optional[str] = None) -> None:
        for acct in self._accounts(session_id, tenant):
            acct.add(name, n)

    def observe_txn(self, session_id: str, seconds: float,
                    request_id: str = "", tenant: Optional[str] = None) -> None:
        for acct in self._accounts(session_id, tenant):
            acct.observe_txn(seconds, request_id)

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": METER_SCHEMA,
            "objectives": [o.to_json() for o in self.objectives],
            "sessions": {
                sid: acct.to_json(self.objectives)
                for sid, acct in sorted(self.sessions.items())
            },
            "tenants": {
                ten: acct.to_json(self.objectives)
                for ten, acct in sorted(self.tenants.items())
            },
        }


# --------------------------------------------------------------------------
# Module-global meter, mirroring the events-bus enable/disable idiom.

ENABLED = False
_METER = Meter()


def enable(objectives: Optional[Sequence[SLObjective]] = None) -> None:
    """Turn metering on, starting a fresh epoch.  ``objectives``
    replaces the SLO set (default :data:`DEFAULT_OBJECTIVES`)."""
    global ENABLED, _METER
    _METER = Meter(tuple(objectives) if objectives is not None
                   else DEFAULT_OBJECTIVES)
    ENABLED = True


def disable() -> None:
    global ENABLED
    ENABLED = False


def reset() -> None:
    """Drop all accounts; keeps the enabled flag and objectives."""
    global _METER
    _METER = Meter(_METER.objectives)


def meter() -> Meter:
    return _METER


def register_session(session_id: str, tenant: str = "default") -> None:
    if ENABLED:
        _METER.register_session(session_id, tenant)


def add(session_id: str, name: str, n: float = 1,
        tenant: Optional[str] = None) -> None:
    """Bump one counter for a session (and its tenant).  Callers on hot
    paths must gate on :data:`ENABLED` themselves; this re-checks only
    as a safety net."""
    if ENABLED:
        _METER.add(session_id, name, n, tenant)


def add_phase(session_id: str, phase: str, seconds: float,
              tenant: Optional[str] = None) -> None:
    """Accumulate interpreter phase seconds (match/select/act)."""
    if ENABLED:
        name = _PHASE_COUNTER.get(phase)
        if name:
            _METER.add(session_id, name, seconds, tenant)


def txn(session_id: str, seconds: float, request_id: str = "",
        tenant: Optional[str] = None) -> None:
    """Record one completed transaction's submit→done latency."""
    if ENABLED:
        _METER.observe_txn(session_id, seconds, request_id, tenant)


def snapshot() -> Dict[str, Any]:
    doc = _METER.to_json()
    doc["enabled"] = ENABLED
    return doc


def parse_objective(spec: str) -> SLObjective:
    """Parse a CLI objective spec ``name:target_ms:goal``
    (e.g. ``txn_p99:250:0.99``)."""
    parts = spec.split(":")
    if len(parts) != 3:
        raise ValueError(
            f"objective spec {spec!r} is not name:target_ms:goal")
    name, target_s, goal_s = parts
    target = float(target_s)
    goal = float(goal_s)
    if not name or target <= 0 or not (0.0 < goal < 1.0):
        raise ValueError(f"objective spec {spec!r} out of range")
    return SLObjective(name, target, goal)
