"""On-demand aggregation of an event snapshot into hot-spot tables.

The runtime analogue of the paper's evidence chain: per-node and
per-production tables answer "where does match time go" (the Hiperfact
hot-spot question), per-lock tables answer "where does synchronization
time go" (Tables 4-7/4-9 as live measurements), and the phase table
splits the recognize-act cycle into match / conflict-resolution / act
(the §2.1 decomposition the paper times).

``build`` consumes an :class:`~repro.obs.events.ObsSnapshot`; passing
the compiled :class:`~repro.rete.network.ReteNetwork` attributes each
beta node to its owning production (beta nodes are never shared between
productions — paper footnote 6 — so the attribution is exact, and the
per-production activation totals equal ``MatchStats.node_activations``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .events import ObsSnapshot

_NS_PER_MS = 1e6


@dataclass
class NodeRow:
    """Hot-spot row for one two-input/terminal node."""

    node_id: int
    kind: str
    production: str  # "?" when no network was supplied
    activations: int
    self_ms: float
    examined: int
    emitted: int


@dataclass
class ProductionRow:
    """Per-production roll-up of its (private) beta nodes."""

    production: str
    activations: int
    self_ms: float
    examined: int


@dataclass
class LockRow:
    """Timed contention profile for one lock site label."""

    label: str
    acquires: int
    contended: int
    wait_ms: float
    hold_ms: float

    @property
    def contention_ratio(self) -> float:
        return self.contended / self.acquires if self.acquires else 0.0


@dataclass
class PhaseRow:
    """One recognize-act phase (match / select / act / ...)."""

    phase: str
    count: int
    total_ms: float


@dataclass
class Profile:
    """Everything :func:`build` derives from one snapshot."""

    nodes: List[NodeRow] = field(default_factory=list)
    productions: List[ProductionRow] = field(default_factory=list)
    locks: List[LockRow] = field(default_factory=list)
    phases: List[PhaseRow] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    dropped: int = 0

    @property
    def total_activations(self) -> int:
        return sum(row.activations for row in self.nodes)


def build(snap: ObsSnapshot, network=None) -> Profile:
    """Aggregate ``snap`` into sorted hot-spot tables (hottest first)."""
    owner: Dict[int, str] = getattr(network, "node_owner", None) or {}
    profile = Profile(counters=dict(snap.counters), dropped=snap.dropped)

    by_prod: Dict[str, ProductionRow] = {}
    for node_id, (kind, acts, self_ns, examined, emitted) in snap.nodes.items():
        prod = owner.get(node_id, "?")
        profile.nodes.append(
            NodeRow(
                node_id=node_id,
                kind=kind,
                production=prod,
                activations=acts,
                self_ms=self_ns / _NS_PER_MS,
                examined=examined,
                emitted=emitted,
            )
        )
        row = by_prod.get(prod)
        if row is None:
            by_prod[prod] = ProductionRow(prod, acts, self_ns / _NS_PER_MS, examined)
        else:
            row.activations += acts
            row.self_ms += self_ns / _NS_PER_MS
            row.examined += examined
    profile.productions = sorted(
        by_prod.values(), key=lambda r: r.self_ms, reverse=True
    )
    profile.nodes.sort(key=lambda r: r.self_ms, reverse=True)

    for label, (acquires, contended, wait_ns, hold_ns) in sorted(snap.locks.items()):
        profile.locks.append(
            LockRow(
                label=label,
                acquires=acquires,
                contended=contended,
                wait_ms=wait_ns / _NS_PER_MS,
                hold_ms=hold_ns / _NS_PER_MS,
            )
        )
    profile.locks.sort(key=lambda r: r.wait_ms, reverse=True)

    phases: Dict[str, PhaseRow] = {}
    for _t0, dur, _cat, name, _args in snap.spans_by_cat("phase"):
        row = phases.get(name)
        if row is None:
            phases[name] = PhaseRow(name, 1, dur / _NS_PER_MS)
        else:
            row.count += 1
            row.total_ms += dur / _NS_PER_MS
    profile.phases = sorted(phases.values(), key=lambda r: r.total_ms, reverse=True)
    return profile


# -- renderers ---------------------------------------------------------------


def render_text(profile: Profile, limit: int = 15) -> str:
    """Human-readable hot-spot report, hottest entries first."""
    lines: List[str] = []
    if profile.phases:
        lines.append("phases (recognize-act cycle):")
        lines.append(f"  {'phase':<16} {'count':>8} {'total ms':>10}")
        for row in profile.phases:
            lines.append(f"  {row.phase:<16} {row.count:>8} {row.total_ms:>10.2f}")
        lines.append("")
    if profile.productions:
        lines.append(f"hot productions (top {limit}):")
        lines.append(
            f"  {'production':<28} {'activations':>11} {'self ms':>9} {'examined':>9}"
        )
        for row in profile.productions[:limit]:
            lines.append(
                f"  {row.production:<28} {row.activations:>11} "
                f"{row.self_ms:>9.2f} {row.examined:>9}"
            )
        lines.append(
            f"  total activations: {profile.total_activations}"
        )
        lines.append("")
    if profile.nodes:
        lines.append(f"hot nodes (top {limit}):")
        lines.append(
            f"  {'node':>6} {'kind':<5} {'production':<28} "
            f"{'activations':>11} {'self ms':>9} {'examined':>9} {'emitted':>8}"
        )
        for row in profile.nodes[:limit]:
            lines.append(
                f"  {row.node_id:>6} {row.kind:<5} {row.production:<28} "
                f"{row.activations:>11} {row.self_ms:>9.2f} "
                f"{row.examined:>9} {row.emitted:>8}"
            )
        lines.append("")
    if profile.locks:
        lines.append("lock contention:")
        lines.append(
            f"  {'lock':<12} {'acquires':>9} {'contended':>9} {'ratio':>7} "
            f"{'wait ms':>9} {'hold ms':>9}"
        )
        for row in profile.locks:
            lines.append(
                f"  {row.label:<12} {row.acquires:>9} {row.contended:>9} "
                f"{row.contention_ratio:>7.3f} {row.wait_ms:>9.2f} {row.hold_ms:>9.2f}"
            )
        lines.append("")
    if profile.counters:
        lines.append("counters:")
        for name, n in sorted(profile.counters.items()):
            lines.append(f"  {name:<28} {n}")
        lines.append("")
    if profile.dropped:
        lines.append(f"dropped spans (buffer cap): {profile.dropped}")
    return "\n".join(lines).rstrip() or "(no events recorded)"


def to_json(profile: Profile) -> dict:
    """The same tables as a JSON-serializable dict."""
    return {
        "phases": [
            {"phase": r.phase, "count": r.count, "total_ms": r.total_ms}
            for r in profile.phases
        ],
        "productions": [
            {
                "production": r.production,
                "activations": r.activations,
                "self_ms": r.self_ms,
                "examined": r.examined,
            }
            for r in profile.productions
        ],
        "nodes": [
            {
                "node_id": r.node_id,
                "kind": r.kind,
                "production": r.production,
                "activations": r.activations,
                "self_ms": r.self_ms,
                "examined": r.examined,
                "emitted": r.emitted,
            }
            for r in profile.nodes
        ],
        "locks": [
            {
                "label": r.label,
                "acquires": r.acquires,
                "contended": r.contended,
                "contention_ratio": r.contention_ratio,
                "wait_ms": r.wait_ms,
                "hold_ms": r.hold_ms,
            }
            for r in profile.locks
        ],
        "counters": dict(profile.counters),
        "total_activations": profile.total_activations,
        "dropped": profile.dropped,
    }
