"""Request-scoped context: who caused this engine work?

The bus (:mod:`repro.obs.events`) answers *where* time goes — nodes,
locks, phases.  This module answers *on whose behalf*: every serve
request gets a :class:`RequestContext` (request id, session id, tenant
label) that travels from the protocol layer through the interpreter's
recognize-act phases into the match engines, so a span in a stitched
multi-process trace — or a counter in the meter
(:mod:`repro.obs.meter`) — can always be attributed back to the client
request that caused it.

Propagation crosses three execution boundaries, each handled where it
happens rather than by ambient magic:

* **asyncio → interpreter** (same thread): a ``contextvars.ContextVar``
  holds the active context; the serve session worker activates it
  around each transaction, and the interpreter reads it when stamping
  phase spans or metering phase seconds (:func:`current`, :func:`tag`).
* **control thread → match threads** (threaded engine): worker threads
  do not inherit the contextvar, so the engine captures
  :func:`current_ids` at dispatch time and tags every task it pushes —
  the per-task span args carry the ids explicitly.
* **control process → match processes** (mp engine): the ids ride the
  existing ``("changes", seq, payload)`` pipe message as a fourth
  element; each worker stamps them into its batch span, which is how
  stitched traces gain request-scoped flow arrows end to end.

Everything here follows the obs overhead contract: with no context
active, :func:`current` is one ``ContextVar.get`` and :func:`tag`
returns its argument untouched — no allocation.
"""

from __future__ import annotations

import itertools
from contextvars import ContextVar, Token
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional

#: Span-args keys the context contributes (see :meth:`RequestContext.ids`).
CTX_KEYS = ("req", "session", "tenant")

#: Tenant label used when a request names none.
DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class RequestContext:
    """One request's identity, immutable for its whole lifetime."""

    request_id: str
    session_id: str = ""
    tenant: str = DEFAULT_TENANT
    #: Precomputed span-args form, built once so :func:`tag` on the hot
    #: path merges a ready dict instead of formatting per span.
    _ids: Dict[str, str] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "_ids",
            {"req": self.request_id, "session": self.session_id,
             "tenant": self.tenant},
        )

    def ids(self) -> Dict[str, str]:
        """The context as span args: ``{"req", "session", "tenant"}``.
        Callers must treat the returned dict as read-only (it is the
        shared precomputed copy)."""
        return self._ids


_current: ContextVar[Optional[RequestContext]] = ContextVar(
    "repro_request_context", default=None
)

#: Process-wide request id source: ids must stay unique across every
#: session of one server so trace args and meter exemplars never alias.
_req_counter = itertools.count(1)


def new_request(
    session_id: str = "", tenant: str = DEFAULT_TENANT
) -> RequestContext:
    """Mint a context with a fresh process-unique request id (``rN``)."""
    return RequestContext(
        request_id=f"r{next(_req_counter)}",
        session_id=session_id,
        tenant=tenant or DEFAULT_TENANT,
    )


def current() -> Optional[RequestContext]:
    """The active context, or None outside any request scope."""
    return _current.get()


def current_ids() -> Optional[Dict[str, str]]:
    """The active context's span-args ids, or None.  This is what the
    engines capture at dispatch time to tag tasks and pipe messages."""
    ctx = _current.get()
    return None if ctx is None else ctx.ids()


def activate(ctx: Optional[RequestContext]) -> Token:
    """Make ``ctx`` current; returns the token for :func:`deactivate`.
    The explicit pair (rather than only the context manager) exists for
    the serve session worker, which activates around an awaited call."""
    return _current.set(ctx)


def deactivate(token: Token) -> None:
    _current.reset(token)


class scope:
    """``with scope(ctx): ...`` — context manager form of activate."""

    __slots__ = ("_ctx", "_token")

    def __init__(self, ctx: Optional[RequestContext]) -> None:
        self._ctx = ctx

    def __enter__(self) -> Optional[RequestContext]:
        self._token = _current.set(self._ctx)
        return self._ctx

    def __exit__(self, *exc: Any) -> None:
        _current.reset(self._token)


def tag(args: Optional[dict]) -> Optional[dict]:
    """Merge the active context's ids into span args.

    No context → ``args`` returned untouched (no allocation); with a
    context, a new dict is built so the caller's literal is never
    mutated.  Use at every span site that should be request-scoped.
    """
    ctx = _current.get()
    if ctx is None:
        return args
    merged = dict(args) if args else {}
    merged.update(ctx.ids())
    return merged


def tag_ids(args: Optional[dict], ids: Optional[Dict[str, str]]) -> Optional[dict]:
    """Like :func:`tag` but with explicitly-carried ids — the form for
    engine workers that received the ids via a task tuple or a pipe
    message instead of the contextvar."""
    if ids is None:
        return args
    merged = dict(args) if args else {}
    merged.update(ids)
    return merged
