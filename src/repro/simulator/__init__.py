"""Discrete-event simulator of PSM-E on the Encore Multimax: machine
cost model, lock models, and the trace-driven simulation engine."""

from .engine import EncoreSimulator, SimOptions, SimResult, simulate, speedup, uniprocessor_baseline
from .locks import SimLock, SimMRSWLine, SpinStats
from .machine import DEFAULT_CONFIG, MachineConfig, task_cost
from .report import (
    SpeedupCurve,
    TimeBreakdown,
    TraceProfile,
    profile_trace,
    speedup_curve,
    time_breakdown,
)

__all__ = [
    "DEFAULT_CONFIG",
    "SpeedupCurve",
    "TimeBreakdown",
    "TraceProfile",
    "profile_trace",
    "speedup_curve",
    "time_breakdown",
    "EncoreSimulator",
    "MachineConfig",
    "SimLock",
    "SimMRSWLine",
    "SimOptions",
    "SimResult",
    "SpinStats",
    "simulate",
    "speedup",
    "task_cost",
    "uniprocessor_baseline",
]
