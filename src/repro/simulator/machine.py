"""The Encore Multimax machine model.

All costs are in *instructions* of the NS32032 (§2.3: ~0.75 MIPS per
processor, two per board, 100 MB/s Nanobus).  The calibration anchors
come from the paper itself:

* a constant-test node activation costs ~3 instructions (§3.1) and is
  therefore grouped;
* the average two-input task runs ~115 instructions for Weaver and
  100–700 across the three programs (§4.1/§5);
* the MRSW lock scheme adds enough per-activation overhead to raise
  uniprocessor match time by ~3–13% (Table 4-8 vs 4-6).

The per-task cost is assembled from the trace's size features::

    join/not task = join_base
                  + per_opp_examined  * tokens examined in opposite memory
                  + per_same_examined * tokens scanned locating a delete
                  + per_child_build   * output tokens built
    (+ queue push cost per output token, paid at push time)
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from ..rete.trace import TaskRecord


@dataclass(frozen=True)
class MachineConfig:
    """Instruction-level cost model of PSM-E on the Multimax."""

    # Processor speed, for converting instruction counts to seconds.
    mips: float = 0.75

    # Spin locks (test and test-and-set): one spin iteration's length,
    # and the bus-traffic penalty added to a contended handoff per
    # concurrent waiter (the TTAS release storm).  The storm penalty
    # matters for the *long-hold* hash-line locks, where waiters pile up
    # during an occupancy; the few-instruction queue critical sections
    # release before a storm can assemble, so they carry no penalty.
    spin_period: int = 8
    ttas_handoff: int = 8
    queue_handoff: int = 0

    # Task queue operations (lock hold times; TaskCount maintenance is
    # folded in, as the counter is updated next to the queue accesses).
    # These are *pointer* pushes/pops in hand-tuned code — the paper
    # stresses that only very limited overheads can be tolerated.
    queue_push: int = 5
    queue_pop: int = 6

    # How long a parked (idle) process takes to notice a new task.
    poll_delay: int = 8

    # Constant-test (alpha) network.
    change_dispatch: int = 12        # root-token handling + class hash
    const_test: int = 3              # the paper's number
    alpha_group_size: int = 16       # constant tests grouped per task
    alpha_fanout_split: int = 10     # successors per constant-test group
    alpha_group_overhead: int = 12   # task bookkeeping per group

    # Two-input node activations.
    join_base: int = 40
    per_opp_examined: int = 6
    per_same_examined: int = 4
    per_child_build: int = 16
    not_extra: int = 10              # negated nodes also maintain counts

    # Split of the join cost for the MRSW scheme: the memory update
    # (under the modification lock) vs the opposite-memory search.
    update_base: int = 18

    # Terminal nodes (conflict-set update, under the conflict-set lock).
    term_cost: int = 30

    # Line locks.
    line_lock_hold_overhead: int = 2   # simple flag set/clear
    mrsw_guard_hold: int = 4           # flag+counter check under guard
    mrsw_overhead: int = 12            # two guard passes + bookkeeping
    requeue_cost: int = 18             # give up the line, push task back

    # Control process.
    rhs_change_cost: int = 70          # threaded-code eval per WM change
    cr_base: int = 80                  # conflict resolution fixed cost
    cr_per_delta: int = 25             # per conflict-set change

    def seconds(self, instructions: float) -> float:
        return instructions / (self.mips * 1e6)

    def with_overrides(self, **kw) -> "MachineConfig":
        return replace(self, **kw)


#: The configuration used throughout the benchmarks.
DEFAULT_CONFIG = MachineConfig()


def task_cost(task: TaskRecord, config: MachineConfig) -> int:
    """Total execution cost of one traced task (excluding lock waits
    and child-push queue operations, which the simulator adds)."""
    if task.kind == "term":
        return config.term_cost
    cost = (
        config.join_base
        + config.per_opp_examined * task.opp_examined
        + config.per_same_examined * task.same_examined
        + config.per_child_build * task.n_children
    )
    if task.kind == "not":
        cost += config.not_extra
    return cost


def task_cost_parts(task: TaskRecord, config: MachineConfig) -> Tuple[int, int, int]:
    """(update, scan, build) cost split of a two-input activation.

    * *update* — add/delete the token in this node's memory, including
      the same-memory scan locating a delete target (held under the
      modification lock in the MRSW scheme);
    * *scan* — examine the opposite memory for consistent tokens (held
      under the line flag; concurrent for same-side MRSW users);
    * *build* — construct the output tokens (private work: runs after
      the line is released in both schemes).
    """
    update = config.update_base + config.per_same_examined * task.same_examined
    if task.kind == "not":
        update += config.not_extra
    scan = (config.join_base - config.update_base) + config.per_opp_examined * task.opp_examined
    build = config.per_child_build * task.n_children
    return update, scan, build


def task_cost_split(task: TaskRecord, config: MachineConfig) -> Tuple[int, int]:
    """(update_phase, rest) split — kept for the MRSW mod-lock model."""
    update, scan, build = task_cost_parts(task, config)
    return update, scan + build


def alpha_tasks(n_const_tests: int, n_children: int, config: MachineConfig):
    """Split one WM change's constant-test work into group tasks.

    Returns a list of ``(cost, n_children_of_group)`` pairs; children
    (first-level two-input activations) are distributed round-robin.
    """
    group = max(config.alpha_group_size, 1)
    # Group by constant tests AND by successor count: a chain of
    # constant-test activations that fans out to many two-input nodes
    # is split so the successor pushes are not serialized on one
    # process.
    n_groups = max(
        1,
        -(-n_const_tests // group),
        -(-n_children // max(config.alpha_fanout_split, 1)),
    )
    tests_left = n_const_tests
    out = []
    for g in range(n_groups):
        tests = min(group, tests_left) if g < n_groups - 1 else tests_left
        tests_left -= tests
        kids = n_children // n_groups + (1 if g < n_children % n_groups else 0)
        cost = config.change_dispatch + config.const_test * tests + config.alpha_group_overhead
        out.append((cost, kids))
    return out
