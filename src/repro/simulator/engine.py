"""Trace-driven discrete-event simulation of PSM-E on the Multimax.

Replays the task DAG recorded by the sequential matcher
(:class:`~repro.rete.trace.MatchTrace`) on ``k`` simulated match
processors plus a control process, under the paper's scheduling and
synchronization regime:

* the control process evaluates the RHS (one WM change per
  ``rhs_change_cost`` instructions) and pushes each change's
  constant-test group tasks onto the task queues as soon as the change
  is computed — match pipelines with RHS evaluation (§3.1);
* match processors loop pop → execute → push-children, contending for
  the queue spin locks (one per task queue) and for the hash-table line
  locks (simple or MRSW, §3.2);
* a cycle's match phase ends when its last task completes (TaskCount
  reaching zero); conflict resolution then runs on the control process
  and the next cycle begins.

The replayed DAG is the *sequential* activation set: the paper notes
(Table 4-6 discussion) that a parallel execution can evaluate slightly
different activations; that second-order effect is outside this model.

Determinism: event ordering uses (time, sequence) keys, lock grants are
FIFO by request time, idle processors wake lowest-id first, and queue
selection is round-robin — two runs of the same trace and options give
identical results.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..parallel.policy import POLICY_NAMES, make_policy
from ..rete.trace import MatchTrace, TaskRecord
from .locks import SimLock, SimMRSWLine, SpinStats
from .machine import (
    DEFAULT_CONFIG,
    MachineConfig,
    alpha_tasks,
    task_cost,
    task_cost_parts,
)


@dataclass(frozen=True)
class SimOptions:
    """One experimental configuration (a cell of Tables 4-5/4-6/4-8).

    Two extensions go beyond the paper's implemented system:

    * ``hardware_scheduler`` — the hardware task scheduler Gupta
      proposed (the paper: "So far we have not implemented the
      hardware scheduler") — modeled as a zero-contention dispatch
      unit: pushes and pops cost one instruction and never wait;
    * ``overlap_cr`` — footnote 3's first unimplemented optimization:
      conflict resolution overlaps the next cycle's match instead of
      serializing after it.
    """

    n_match: int = 1
    n_queues: int = 1
    lock_scheme: str = "simple"     # 'simple' | 'mrsw'
    pipelined: bool = True          # overlap match with RHS evaluation
    hardware_scheduler: bool = False
    overlap_cr: bool = False
    #: Task-dispatch policy (:mod:`repro.parallel.policy`) — the same
    #: registry the threaded engine consumes.  The default is
    #: ``work-stealing`` because that *is* how this simulator always
    #: dispatched (workers push spawned tasks to their home queue, the
    #: control process deals round-robin, pops scan home-first): the
    #: paper-table stable metrics are preserved bit for bit.
    policy: str = "work-stealing"

    def __post_init__(self) -> None:
        if self.n_match < 1:
            raise ValueError("need at least one match process")
        if self.n_queues < 1:
            raise ValueError("need at least one task queue")
        if self.lock_scheme not in ("simple", "mrsw"):
            raise ValueError(f"unknown lock scheme {self.lock_scheme!r}")
        if self.policy not in POLICY_NAMES:
            raise ValueError(
                f"unknown policy {self.policy!r}; "
                f"expected one of {', '.join(POLICY_NAMES)}"
            )


@dataclass
class SimResult:
    """Aggregate outcome of one simulated run."""

    options: SimOptions
    config: MachineConfig
    match_instr: float = 0.0          # sum of per-cycle match durations
    total_instr: float = 0.0          # wall time incl. RHS + CR
    cycles: int = 0
    tasks_completed: int = 0
    queue_stats: SpinStats = field(default_factory=SpinStats)
    line_left: SpinStats = field(default_factory=SpinStats)
    line_right: SpinStats = field(default_factory=SpinStats)
    requeues: int = 0
    #: Pops satisfied from a non-home queue (dispatch-policy telemetry).
    steals: int = 0
    #: Hot-queue spills made by the rebalancing policy.
    rebalances: int = 0

    @property
    def match_seconds(self) -> float:
        return self.config.seconds(self.match_instr)

    @property
    def total_seconds(self) -> float:
        return self.config.seconds(self.total_instr)


# Queue entries: ("A", cost, [child tids]) constant-test group task,
# or ("T", tid) a traced two-input/terminal task.
_AlphaEntry = Tuple[str, int, List[int]]
_TaskEntry = Tuple[str, int]


class EncoreSimulator:
    """Deterministic DES replaying one match trace under one option set."""

    def __init__(
        self,
        trace: MatchTrace,
        options: SimOptions,
        config: MachineConfig = DEFAULT_CONFIG,
    ) -> None:
        self.trace = trace
        self.options = options
        self.config = config
        self._children = trace.children_index()
        self._tasks = trace.tasks
        # Event heap of (time, seq, callback).
        self._heap: List[Tuple[float, int, Callable[[float], None]]] = []
        self._seq = 0
        # Task queues and their locks (persist across cycles).
        self._queues: List[List] = [[] for _ in range(options.n_queues)]
        self._qlocks = [
            SimLock(config.spin_period, handoff=config.queue_handoff)
            for _ in range(options.n_queues)
        ]
        # Hash-line locks, created lazily per line id.
        self._line_simple: Dict[int, SimLock] = {}
        self._line_mrsw: Dict[int, SimMRSWLine] = {}
        self._idle: List[int] = []          # parked processor ids (sorted)
        self.policy = make_policy(options.policy)
        # Two push-sequence streams: control pushes keep their own
        # counter so the default (work-stealing) policy reproduces the
        # pre-policy round-robin dealing exactly; worker pushes, whose
        # queue the default policy picks by pusher id alone, advance a
        # separate counter that only sequence-driven policies consume.
        self._push_rr = 0
        self._seq_w = 0
        self._remaining = 0
        self._cycle_last_finish = 0.0
        self.result = SimResult(options=options, config=config)

    # -- event plumbing ------------------------------------------------------

    def _schedule(self, t: float, fn: Callable[[float], None]) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (t, self._seq, fn))

    def _drain(self) -> None:
        heap = self._heap
        while heap:
            t, _seq, fn = heapq.heappop(heap)
            fn(t)

    # -- queue operations ------------------------------------------------------

    def _push(self, t: float, entry, pusher: Optional[int] = None) -> float:
        """One queue-lock acquisition + append; returns the pusher's
        time after the push completes.

        The dispatch policy picks the queue from the task's hash line,
        the pushing processor (``None`` for the control process), a
        push sequence number, and the live queue depths — the same
        decision the threaded engine makes on real queues.  Under the
        hardware scheduler there is no lock and no wait: one
        instruction hands the token to the dispatch unit."""
        if self.options.hardware_scheduler:
            done = t + 1
            self._schedule(done, lambda now, entry=entry: self._append(now, 0, entry))
            return done
        if pusher is None:
            self._push_rr += 1
            seq = self._push_rr
        else:
            self._seq_w += 1
            seq = self._seq_w
        line = None
        if self.policy.needs_line and entry[0] == "T":
            traced_line = self._tasks[entry[1]].line
            if traced_line >= 0:
                line = traced_line
        qi = self.policy.home_for(line, pusher, seq, self._queues) % self.options.n_queues
        grant, spins = self._qlocks[qi].request(t, self.config.queue_push)
        self.result.queue_stats.acquisitions += 1
        self.result.queue_stats.spins += spins
        done = grant + self.config.queue_push
        self._schedule(done, lambda now, qi=qi, entry=entry: self._append(now, qi, entry))
        return done

    def _append(self, now: float, qi: int, entry) -> None:
        self._queues[qi].append(entry)
        if self._idle:
            pid = self._idle.pop(0)
            self._schedule(now + self.config.poll_delay, lambda t, pid=pid: self._poll(pid, t))

    # -- processor behaviour ------------------------------------------------------

    def _poll(self, pid: int, t: float) -> None:
        """The match-process main loop, step 1: find a task."""
        if self.options.hardware_scheduler:
            queue = self._queues[0]
            if queue:
                entry = queue.pop()
                self._schedule(t + 1, lambda now, pid=pid, e=entry: self._execute(pid, e, now))
            elif pid not in self._idle:
                self._idle.append(pid)
                self._idle.sort()
            return
        n = self.options.n_queues
        for offset in range(n):
            qi = (pid + offset) % n
            if self._queues[qi]:
                grant, spins = self._qlocks[qi].request(t, self.config.queue_pop)
                self.result.queue_stats.acquisitions += 1
                self.result.queue_stats.spins += spins
                done = grant + self.config.queue_pop
                self._schedule(done, lambda now, pid=pid, qi=qi: self._popped(pid, qi, now))
                return
        if pid not in self._idle:
            self._idle.append(pid)
            self._idle.sort()

    def _popped(self, pid: int, qi: int, t: float) -> None:
        queue = self._queues[qi]
        if not queue:
            # Raced with another processor; rescan.
            self._poll(pid, t)
            return
        if qi != pid % self.options.n_queues:
            self.result.steals += 1
        entry = queue.pop()
        self._execute(pid, entry, t)

    def _execute(self, pid: int, entry, t: float) -> None:
        if entry[0] == "A":
            _tag, cost, child_tids = entry
            self._finish(pid, t + cost, child_tids)
            return
        tid = entry[1]
        task = self._tasks[tid]
        if task.kind == "term" or task.line < 0:
            self._finish(pid, t + task_cost(task, self.config), self._children[tid])
            return
        if self.options.lock_scheme == "simple":
            self._execute_simple(pid, task, t)
        else:
            self._execute_mrsw(pid, task, t, entry)

    def _execute_simple(self, pid: int, task: TaskRecord, t: float) -> None:
        lock = self._line_simple.get(task.line)
        if lock is None:
            lock = self._line_simple[task.line] = SimLock(
                self.config.spin_period, handoff=self.config.ttas_handoff
            )
        update, scan, build = task_cost_parts(task, self.config)
        hold = update + scan + self.config.line_lock_hold_overhead
        grant, spins = lock.request(t, hold)
        self._line_side_stats(task.side, spins)
        # Output-token construction happens after the line is released.
        self._finish(pid, grant + hold + build, self._children[task.tid])

    def _execute_mrsw(self, pid: int, task: TaskRecord, t: float, entry) -> None:
        cfg = self.config
        line = self._line_mrsw.get(task.line)
        if line is None:
            line = self._line_mrsw[task.line] = SimMRSWLine(
                cfg.spin_period, SpinStats(), SpinStats(), handoff=cfg.ttas_handoff
            )
        guard_before = line.guard.stats.spins
        mod_before = line.mod.stats.spins
        after, admitted = line.try_enter(t, task.side, cfg.mrsw_guard_hold)
        if not admitted:
            self.result.requeues += 1
            self._line_side_requeue(task.side)
            done = self._push(after + cfg.requeue_cost, entry, pusher=pid)
            self._poll(pid, done)
            return
        update, scan, build = task_cost_parts(task, cfg)
        grant, _spins = line.mod.request(after, update)
        line_done = grant + update + scan
        line.register_exit(line_done, cfg.mrsw_guard_hold)
        end = line_done + build + cfg.mrsw_overhead
        # Two lock passes (guard, then mod) have a floor of two free
        # spins; normalize to the simple scheme's floor of one so the
        # schemes are comparable (the paper's metric is spins before
        # access to the *bucket*).
        raw = (line.guard.stats.spins - guard_before) + (line.mod.stats.spins - mod_before)
        spins = max(1, raw - 1)
        self._line_side_stats(task.side, spins, acquisitions=1)
        self._finish(pid, end, self._children[task.tid])

    def _line_side_stats(self, side: str, spins: int, acquisitions: int = 1) -> None:
        agg = self.result.line_left if side == "L" else self.result.line_right
        agg.acquisitions += acquisitions
        agg.spins += spins

    def _line_side_requeue(self, side: str) -> None:
        agg = self.result.line_left if side == "L" else self.result.line_right
        agg.requeues += 1

    def _finish(self, pid: int, t: float, child_tids: List[int]) -> None:
        """Task body done at ``t``: push children, then look for more work."""
        now = t
        for tid in child_tids:
            now = self._push(now, ("T", tid), pusher=pid)
        self._remaining -= 1
        if now > self._cycle_last_finish:
            self._cycle_last_finish = now
        if self._remaining < 0:
            raise RuntimeError("simulator accounting bug: remaining < 0")
        self._poll(pid, now)

    # -- the run ------------------------------------------------------------------

    def run(self) -> SimResult:
        cfg = self.config
        opts = self.options
        clock = 0.0
        total_match = 0.0

        for cycle in self.trace.cycles:
            cycle_start = clock
            rhs_end = cycle_start + cfg.rhs_change_cost * len(cycle.changes)
            if not cycle.changes:
                clock = rhs_end + cfg.cr_base + cfg.cr_per_delta * cycle.cs_deltas
                continue

            # Count this cycle's tasks: alpha group tasks + traced tasks.
            groups_per_change = []
            n_traced = 0
            for change in cycle.changes:
                groups = alpha_tasks(change.n_const_tests, len(change.first_level), cfg)
                groups_per_change.append(groups)
                n_traced += self._count_subtree(change.first_level)
            initial_remaining = sum(len(g) for g in groups_per_change) + n_traced
            self._remaining = initial_remaining
            self._cycle_last_finish = cycle_start
            self._idle = list(range(opts.n_match))

            # Control process: compute changes one by one, pushing each
            # change's group tasks as soon as it is ready.  Must run as
            # events interleaved with the match processes — issuing all
            # pushes up front would reserve the queue locks far into the
            # future and starve the workers at cycle start.
            first_release = (
                cycle_start + cfg.rhs_change_cost if opts.pipelined else rhs_end
            )
            match_start = first_release
            work = list(zip(cycle.changes, groups_per_change))

            def control_step(t: float, idx: int = 0) -> None:
                change, groups = work[idx]
                # Distribute the change's first-level tasks round-robin
                # over its constant-test groups.
                assigned: List[List[int]] = [[] for _ in groups]
                for i, tid in enumerate(change.first_level):
                    assigned[i % len(groups)].append(tid)
                now = t
                for (cost, _nkids), kid_list in zip(groups, assigned):
                    now = self._push(now, ("A", cost, kid_list))
                if idx + 1 < len(work):
                    next_release = now + cfg.rhs_change_cost if opts.pipelined else now
                    self._schedule(
                        next_release, lambda tt, i=idx + 1: control_step(tt, i)
                    )

            self._schedule(first_release, control_step)
            self._drain()

            if self._remaining != 0:
                raise RuntimeError(
                    f"cycle {cycle.index}: {self._remaining} tasks never ran"
                )
            match_end = self._cycle_last_finish
            total_match += match_end - match_start
            self.result.tasks_completed += initial_remaining
            cr_cost = cfg.cr_base + cfg.cr_per_delta * cycle.cs_deltas
            if opts.overlap_cr:
                # Footnote 3: conflict resolution overlaps the tail of
                # match — only the part that cannot be hidden behind
                # the match processes' drain remains on the critical
                # path (modeled as half the CR work exposed).
                clock = max(match_end, rhs_end) + cr_cost / 2
            else:
                clock = max(match_end, rhs_end) + cr_cost

        self.result.cycles = len(self.trace.cycles)
        self.result.match_instr = total_match
        self.result.total_instr = clock
        self.result.rebalances = self.policy.rebalances
        return self.result

    def _count_subtree(self, first_level: List[int]) -> int:
        count = 0
        stack = list(first_level)
        while stack:
            tid = stack.pop()
            count += 1
            stack.extend(self._children[tid])
        return count


def simulate(
    trace: MatchTrace,
    n_match: int,
    n_queues: int = 1,
    lock_scheme: str = "simple",
    pipelined: bool = True,
    policy: str = "work-stealing",
    config: MachineConfig = DEFAULT_CONFIG,
) -> SimResult:
    """Convenience wrapper: build and run one simulation."""
    options = SimOptions(
        n_match=n_match,
        n_queues=n_queues,
        lock_scheme=lock_scheme,
        pipelined=pipelined,
        policy=policy,
    )
    return EncoreSimulator(trace, options, config).run()


def uniprocessor_baseline(
    trace: MatchTrace, lock_scheme: str = "simple", config: MachineConfig = DEFAULT_CONFIG
) -> SimResult:
    """The paper's second column: match time with one process and no
    overlap with RHS evaluation (but all parallel-code overheads)."""
    return simulate(
        trace, n_match=1, n_queues=1, lock_scheme=lock_scheme, pipelined=False, config=config
    )


def speedup(trace: MatchTrace, baseline: SimResult, **kw) -> float:
    """Speed-up of configuration ``kw`` relative to ``baseline``."""
    run = simulate(trace, config=baseline.config, **kw)
    return baseline.match_instr / run.match_instr if run.match_instr else float("inf")
