"""Lock models for the discrete-event simulator.

:class:`SimLock` models a test-and-test-and-set spin lock with
FIFO-by-request-time granting: a request at time *t* is granted at
``max(t, free_at)`` and the waiting time is converted into a spin count
(one spin per ``spin_period`` instructions, minimum 1 — matching the
paper's "number of times a process spins before it gets access", which
is 1.00–1.03 even without contention in Table 4-7).

:class:`SimMRSWLine` models the per-line state of the
multiple-reader-single-writer scheme: the Unused/Left/Right flag with a
user count behind a guard lock, plus the modification lock.  Same-side
activations overlap in the search phase; opposite-side arrivals are
rejected (the caller requeues the task).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass
class SpinStats:
    """Accumulated contention for one lock (or one group of locks)."""

    acquisitions: int = 0
    spins: int = 0
    requeues: int = 0

    @property
    def mean_spins(self) -> float:
        return self.spins / self.acquisitions if self.acquisitions else 0.0

    def merge(self, other: "SpinStats") -> None:
        self.acquisitions += other.acquisitions
        self.spins += other.spins
        self.requeues += other.requeues


class SimLock:
    """Exclusive spin lock with request-time FIFO granting.

    Models the test-and-test-and-set *handoff storm*: when a contended
    lock is released, every spinner rushes its interlocked attempt onto
    the bus, stretching the effective hold by ``handoff`` instructions
    per concurrent waiter.  This is what makes heavily-contended locks
    (Tourney's cross-product line) degrade *further* as processes are
    added, the effect behind the declining columns of Table 4-5.
    """

    __slots__ = ("free_at", "spin_period", "handoff", "stats", "_pending")

    def __init__(
        self,
        spin_period: int,
        stats: Optional[SpinStats] = None,
        handoff: float = 0.0,
    ) -> None:
        self.free_at = 0.0
        self.spin_period = spin_period
        self.handoff = handoff
        self.stats = stats if stats is not None else SpinStats()
        self._pending: list = []

    def request(self, t: float, hold: float) -> Tuple[float, int]:
        """Request at time ``t``, holding for ``hold`` once granted.

        Returns ``(grant_time, spins)``.
        """
        if self._pending:
            self._pending = [g for g in self._pending if g > t]
        waiters = len(self._pending)
        if waiters:
            hold += self.handoff * waiters
        grant = self.free_at if self.free_at > t else t
        self.free_at = grant + hold
        if self.handoff:
            self._pending.append(grant)
        spins = 1 + int((grant - t) // self.spin_period)
        self.stats.acquisitions += 1
        self.stats.spins += spins
        return grant, spins

    def extend(self, until: float) -> None:
        """Keep the lock held until ``until`` (for variable hold times)."""
        if until > self.free_at:
            self.free_at = until


# MRSW flag states.
UNUSED, LEFT_IN_USE, RIGHT_IN_USE = 0, 1, 2
_STATE = {"L": LEFT_IN_USE, "R": RIGHT_IN_USE}


class SimMRSWLine:
    """Discrete-event model of one MRSW hash-table line.

    Because the event loop delivers requests in time order, the flag
    and count can be advanced lazily: users register their exit times,
    and the state observed by a request at time *t* is computed after
    expiring all exits ≤ *t*.
    """

    __slots__ = ("guard", "mod", "flag", "exits")

    def __init__(
        self,
        spin_period: int,
        guard_stats: SpinStats,
        mod_stats: SpinStats,
        handoff: float = 0.0,
    ) -> None:
        self.guard = SimLock(spin_period, guard_stats, handoff=handoff)
        self.mod = SimLock(spin_period, mod_stats, handoff=handoff)
        self.flag = UNUSED
        self.exits: list = []  # exit times of current users

    def _expire(self, t: float) -> None:
        if self.exits:
            self.exits = [e for e in self.exits if e > t]
            if not self.exits:
                self.flag = UNUSED

    def try_enter(self, t: float, side: str, guard_hold: float) -> Tuple[float, bool]:
        """Attempt to take the line for ``side`` at time ``t``.

        Returns ``(time_after_guard, admitted)``.  When the line is
        busy with the opposite side, ``admitted`` is False and the
        caller requeues the task.
        """
        grant, _spins = self.guard.request(t, guard_hold)
        after = grant + guard_hold
        self._expire(grant)
        want = _STATE[side]
        if self.flag != UNUSED and self.flag != want:
            self.guard.stats.requeues += 1
            return after, False
        self.flag = want
        return after, True

    def register_exit(self, exit_time: float, guard_hold: float) -> None:
        """Record that an admitted user leaves the line at ``exit_time``.

        The exit-side guard pass (decrement, maybe clear the flag) is
        charged to the leaving task via ``mrsw_overhead`` rather than
        run through ``guard.request`` — issuing a lock request at a
        *future* time would advance ``free_at`` past the exit and
        spuriously serialize every same-side entry behind it.
        """
        self.exits.append(exit_time + guard_hold)
