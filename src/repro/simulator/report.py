"""Analysis helpers over traces and simulation results.

These answer the diagnostic questions the paper's §4 discussion walks
through: how wide is the task DAG, what bounds the speed-up (work,
critical path, or a hot hash line), and where does a configuration's
time go.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..rete.trace import MatchTrace
from .engine import SimResult, simulate, uniprocessor_baseline
from .machine import DEFAULT_CONFIG, MachineConfig, alpha_tasks, task_cost


@dataclass
class TraceProfile:
    """Structural summary of a match trace."""

    n_cycles: int
    n_changes: int
    n_tasks: int
    total_work: float              # instructions across all tasks
    mean_task_cost: float
    max_chain_depth: int
    mean_tasks_per_change: float
    hot_lines: List[Tuple[int, float]]   # (line, summed held work), top N

    def dag_parallelism_bound(self, n_procs: int) -> float:
        """An upper bound on speed-up from work / critical structure."""
        return min(n_procs, self.n_tasks / max(self.n_cycles, 1))


def profile_trace(
    trace: MatchTrace, config: MachineConfig = DEFAULT_CONFIG, top_lines: int = 8
) -> TraceProfile:
    """Compute the structural profile of a trace."""
    children = trace.children_index()
    costs = [task_cost(t, config) for t in trace.tasks]
    total_work = float(sum(costs))

    # Depth via iterative DFS over each change's subtree.
    max_depth = 0
    for cycle in trace.cycles:
        for change in cycle.changes:
            stack = [(tid, 1) for tid in change.first_level]
            while stack:
                tid, depth = stack.pop()
                if depth > max_depth:
                    max_depth = depth
                stack.extend((c, depth + 1) for c in children[tid])

    line_work: Dict[int, float] = {}
    for task, cost in zip(trace.tasks, costs):
        if task.line >= 0:
            line_work[task.line] = line_work.get(task.line, 0.0) + cost
    hot = sorted(line_work.items(), key=lambda kv: -kv[1])[:top_lines]

    n_changes = max(trace.n_changes, 1)
    return TraceProfile(
        n_cycles=len(trace.cycles),
        n_changes=trace.n_changes,
        n_tasks=trace.n_tasks,
        total_work=total_work,
        mean_task_cost=total_work / max(trace.n_tasks, 1),
        max_chain_depth=max_depth,
        mean_tasks_per_change=trace.n_tasks / n_changes,
        hot_lines=hot,
    )


@dataclass
class SpeedupCurve:
    """Speed-ups across a process-count sweep for one configuration."""

    n_queues: int
    lock_scheme: str
    processes: Tuple[int, ...]
    speedups: Tuple[float, ...]
    baseline_seconds: float

    @property
    def saturation(self) -> float:
        """The best speed-up observed along the curve."""
        return max(self.speedups)


def speedup_curve(
    trace: MatchTrace,
    processes: Tuple[int, ...] = (1, 3, 5, 7, 11, 13),
    n_queues: int = 1,
    lock_scheme: str = "simple",
    config: MachineConfig = DEFAULT_CONFIG,
) -> SpeedupCurve:
    """Simulate the sweep the paper's speed-up tables report."""
    base = uniprocessor_baseline(trace, lock_scheme=lock_scheme, config=config)
    speedups = tuple(
        base.match_instr
        / simulate(
            trace, n_match=k, n_queues=n_queues, lock_scheme=lock_scheme, config=config
        ).match_instr
        for k in processes
    )
    return SpeedupCurve(
        n_queues=n_queues,
        lock_scheme=lock_scheme,
        processes=tuple(processes),
        speedups=speedups,
        baseline_seconds=base.match_seconds,
    )


@dataclass
class TimeBreakdown:
    """Where one simulated run's elapsed time went (per match process)."""

    match_instr: float
    task_work: float            # executing task bodies
    queue_overhead: float       # pop/push holds
    queue_waiting: float        # spin time at queue locks
    line_waiting: float         # spin time at line locks
    idle: float                 # everything else (starvation, ramps)

    @property
    def utilization(self) -> float:
        total = self.match_instr
        return self.task_work / total if total else 0.0


def time_breakdown(
    trace: MatchTrace,
    n_match: int,
    n_queues: int = 1,
    lock_scheme: str = "simple",
    config: MachineConfig = DEFAULT_CONFIG,
) -> TimeBreakdown:
    """Approximate accounting of a configuration's elapsed match time."""
    run = simulate(
        trace, n_match=n_match, n_queues=n_queues, lock_scheme=lock_scheme, config=config
    )
    total_capacity = run.match_instr * n_match
    task_work = float(sum(task_cost(t, config) for t in trace.tasks))
    for cycle in trace.cycles:
        for change in cycle.changes:
            task_work += sum(
                cost for cost, _k in alpha_tasks(
                    change.n_const_tests, len(change.first_level), config
                )
            )
    queue_ops = run.queue_stats.acquisitions
    queue_overhead = queue_ops * (config.queue_push + config.queue_pop) / 2.0
    queue_waiting = (
        (run.queue_stats.spins - queue_ops) * config.spin_period
        if queue_ops
        else 0.0
    )
    line_acqs = run.line_left.acquisitions + run.line_right.acquisitions
    line_spins = run.line_left.spins + run.line_right.spins
    line_waiting = max(line_spins - line_acqs, 0) * config.spin_period
    idle = max(total_capacity - task_work - queue_overhead - queue_waiting - line_waiting, 0.0)
    return TimeBreakdown(
        match_instr=total_capacity,
        task_work=task_work,
        queue_overhead=queue_overhead,
        queue_waiting=queue_waiting,
        line_waiting=line_waiting,
        idle=idle,
    )
