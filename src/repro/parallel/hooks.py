"""Schedule-exploration yield points for the threaded parallel engine.

Every synchronization-relevant operation in :mod:`repro.parallel` —
lock acquire/release, task-queue push/pop, TaskCount updates, token
memory insert/delete, and the idle/quiescence wait loops — calls
:func:`yield_point` with a label naming the operation.

In production no hook is installed and the call is a single global
read plus a ``None`` check: the engine's real-thread behaviour is
unchanged.  Under :mod:`repro.schedck` a cooperative scheduler installs
itself here; each yield point then parks the calling thread on a
per-thread gate until the scheduler hands it the turn, which makes the
interleaving of the whole engine a deterministic function of the
schedule seed (§3.2's "identical conflict sets under any interleaving"
claim becomes testable instead of anecdotal).

Labels are grouped by prefix:

``lock_acquire`` / ``lock_spin`` / ``lock_release``
    :class:`~repro.parallel.locks.SpinLock` operations (``lock_spin``
    fires on every failed test of a busy lock, so a spinning thread
    always cedes the turn and cooperative runs cannot deadlock).
``queue_push`` / ``queue_pop``
    :class:`~repro.parallel.taskqueue.TaskQueueSet` operations.
``taskcount_inc`` / ``taskcount_dec``
    :class:`~repro.parallel.taskqueue.TaskCount` updates.
``mem_insert`` / ``mem_remove``
    :class:`~repro.parallel.conjugate.ConjugateMemory` token traffic
    (``mem_insert`` is the ``+`` twin of a conjugate pair, ``mem_remove``
    the ``-`` twin — adversarial policies key on exactly these).
``worker_idle`` / ``quiesce_wait``
    the match-process empty-queue loop and the control process's
    TaskCount-zero wait (§3.2 termination detection).

The labels marked "waiting" below denote a thread that is *blocked on
someone else's progress*; fair policies use this to avoid livelocking
on a spinning thread.
"""

from __future__ import annotations

from typing import Callable, Optional

#: Labels at which a parked thread is waiting for another thread's
#: progress rather than about to change shared state.  ``queue_pop``
#: is included because a pop may find every queue empty: a thread
#: alternating pop/idle must read as continuously waiting or a
#: priority policy would run it forever.
WAIT_LABELS = frozenset({"lock_spin", "worker_idle", "quiesce_wait", "queue_pop"})

_hook: Optional[Callable[[str, object], None]] = None


def install(hook: Callable[[str, object], None]) -> None:
    """Install ``hook(label, detail)`` as the process-wide yield hook."""
    global _hook
    _hook = hook


def uninstall() -> None:
    global _hook
    _hook = None


def installed() -> bool:
    return _hook is not None


def yield_point(label: str, detail: object = None) -> None:
    """Production no-op; under a harness, cede the turn at ``label``."""
    hook = _hook
    if hook is not None:
        hook(label, detail)


def thread_exit() -> None:
    """Called by a match process as it dies (poison or failure), so a
    scheduler never waits on a thread that will not yield again."""
    hook = _hook
    if hook is not None:
        exit_fn = getattr(hook, "thread_exit", None)
        if exit_fn is not None:
            exit_fn()
