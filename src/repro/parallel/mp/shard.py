"""Hash-line sharding: the paper's line locks become shard routing.

The threaded engine guards every token hash-table *line* (the pair of
corresponding left/right buckets for one ``(node-id, key)``) with a
spin lock.  The multiprocess engine removes the locks entirely by
giving each line exactly one *owner* worker: all activations touching
a line are routed to its owner, so the owner mutates its shard of the
token memories single-threaded, and the paper's per-line mutual
exclusion holds by construction instead of by locking.

Routing must be a pure function of ``(node_id, key)`` that every
process computes identically — Python's salted ``hash`` would break
that across processes, so the map is built on
:func:`repro.rete.memories.stable_hash` (the same deterministic hash
the memory systems use for line assignment).  The Hypothesis property
suite (``tests/parallel/test_shard_properties.py``) pins down the three
contracts: every pair routes to exactly one worker, routing is stable
across processes regardless of ``PYTHONHASHSEED``, and repartitioning
to a different worker count still covers every line with no overlap.
"""

from __future__ import annotations

from typing import Tuple

from ...rete.memories import stable_hash


class ShardMap:
    """Deterministic ``(node_id, key) -> line -> owner worker`` map.

    ``n_lines`` mirrors the hash-table size of the memory systems;
    ``n_workers`` is the number of match processes.  Lines are dealt to
    workers round-robin (``line % n_workers``), so consecutive lines —
    which :class:`~repro.rete.memories.HashMemorySystem` fills roughly
    uniformly — spread evenly across workers.
    """

    __slots__ = ("n_lines", "n_workers")

    def __init__(self, n_lines: int, n_workers: int) -> None:
        if n_lines < 1:
            raise ValueError("n_lines must be >= 1")
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_lines = n_lines
        self.n_workers = n_workers

    def line_of(self, node_id: int, key: tuple) -> int:
        """The hash line ``(node_id, key)`` lives on — identical to
        :meth:`repro.rete.memories.HashMemorySystem.line_of`."""
        return stable_hash((node_id, key)) % self.n_lines

    def owner_of_line(self, line: int) -> int:
        """The worker owning ``line`` (lines dealt round-robin)."""
        return line % self.n_workers

    def route(self, node_id: int, key: tuple) -> int:
        """The worker that must process activations for this line."""
        return self.owner_of_line(self.line_of(node_id, key))

    def lines_owned(self, wid: int) -> Tuple[int, ...]:
        """All lines owned by worker ``wid`` (for partition checks)."""
        if not 0 <= wid < self.n_workers:
            raise ValueError(f"worker id {wid} out of range")
        return tuple(range(wid, self.n_lines, self.n_workers))
