"""Hash-line sharding: the paper's line locks become shard routing.

The threaded engine guards every token hash-table *line* (the pair of
corresponding left/right buckets for one ``(node-id, key)``) with a
spin lock.  The multiprocess engine removes the locks entirely by
giving each line exactly one *owner* worker: all activations touching
a line are routed to its owner, so the owner mutates its shard of the
token memories single-threaded, and the paper's per-line mutual
exclusion holds by construction instead of by locking.

Routing must be a pure function of ``(node_id, key)`` that every
process computes identically — Python's salted ``hash`` would break
that across processes, so the map is built on
:func:`repro.rete.memories.stable_hash` (the same deterministic hash
the memory systems use for line assignment).  The Hypothesis property
suite (``tests/parallel/test_shard_properties.py``) pins down the three
contracts: every pair routes to exactly one worker, routing is stable
across processes regardless of ``PYTHONHASHSEED``, and repartitioning
to a different worker count still covers every line with no overlap.
"""

from __future__ import annotations

from typing import Tuple

from ...rete.memories import stable_hash
from ..policy import make_policy


class ShardMap:
    """Deterministic ``(node_id, key) -> line -> owner worker`` map.

    ``n_lines`` mirrors the hash-table size of the memory systems;
    ``n_workers`` is the number of match processes.  How lines are
    dealt to workers is the placement half of a
    :class:`~repro.parallel.policy.Policy`: round-robin interleaving
    (the historical default — consecutive lines on distinct workers)
    or contiguous blocks (the affinity/rebalance layout — neighbouring
    lines share a worker).  Placement is resolved to a flat owners
    tuple at construction, so forked workers inherit the finished map
    and every process agrees by construction.
    """

    __slots__ = ("n_lines", "n_workers", "policy_name", "_owners")

    def __init__(
        self, n_lines: int, n_workers: int, policy: str = "round-robin"
    ) -> None:
        if n_lines < 1:
            raise ValueError("n_lines must be >= 1")
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_lines = n_lines
        self.n_workers = n_workers
        pol = make_policy(policy)
        self.policy_name = pol.name
        owners = tuple(pol.place_lines(n_lines, n_workers))
        if len(owners) != n_lines:
            raise ValueError(
                f"policy {pol.name!r} placed {len(owners)} lines, "
                f"expected {n_lines}"
            )
        bad = [o for o in owners if not 0 <= o < n_workers]
        if bad:
            raise ValueError(
                f"policy {pol.name!r} placed lines on workers {sorted(set(bad))} "
                f"outside 0..{n_workers - 1}"
            )
        self._owners = owners

    def line_of(self, node_id: int, key: tuple) -> int:
        """The hash line ``(node_id, key)`` lives on — identical to
        :meth:`repro.rete.memories.HashMemorySystem.line_of`."""
        return stable_hash((node_id, key)) % self.n_lines

    def owner_of_line(self, line: int) -> int:
        """The worker owning ``line`` (per the placement policy)."""
        return self._owners[line]

    def route(self, node_id: int, key: tuple) -> int:
        """The worker that must process activations for this line."""
        return self._owners[stable_hash((node_id, key)) % self.n_lines]

    def lines_owned(self, wid: int) -> Tuple[int, ...]:
        """All lines owned by worker ``wid`` (for partition checks)."""
        if not 0 <= wid < self.n_workers:
            raise ValueError(f"worker id {wid} out of range")
        return tuple(
            line for line, owner in enumerate(self._owners) if owner == wid
        )

    def lines_per_worker(self) -> Tuple[int, ...]:
        """Owned-line counts by worker — the placement-imbalance probe
        (a sane policy keeps ``max - min <= 1``)."""
        counts = [0] * self.n_workers
        for owner in self._owners:
            counts[owner] += 1
        return tuple(counts)
