"""Multiprocess match backend (`engine=mp`) — see :mod:`.engine`."""

from .engine import ProcessMatcher, mp_supported
from .shard import ShardMap

#: Alias used by ISSUE/ROADMAP language; the class is a matcher in the
#: interpreter's sense but an "engine" in the CLI/serve sense.
ProcessEngine = ProcessMatcher

__all__ = ["ProcessMatcher", "ProcessEngine", "ShardMap", "mp_supported"]
