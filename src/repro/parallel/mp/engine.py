"""The multiprocess match backend — real CPUs, no GIL, measured speedup.

:class:`ProcessMatcher` is the drop-in matcher the threaded
:class:`~repro.parallel.engine.ParallelMatcher` honestly could not be
under CPython's GIL: ``k`` *match processes* forked from the control
process, sharing the compiled Rete network read-only through fork
(copy-on-write pages, nothing pickled), with the token hash memories
partitioned across workers by line ownership
(:class:`~repro.parallel.mp.shard.ShardMap`) instead of guarded by
line locks.

Control flow per WM-change batch, mirroring §3.1/§3.2 with processes
for threads and shard routing for line locks:

1. the control process increments the shared TaskCount by the worker
   count and broadcasts the batch down every worker's pipe;
2. each worker alpha-dispatches the batch (replicated, read-only),
   keeps the root activations whose lines it owns, and drains them,
   forwarding any child activation that lands on a peer's shard
   (increment-before-send, decrement-after-drain);
3. the control process waits for the shared TaskCount to reach zero —
   the paper's termination detection, now cross-process;
4. a ``flush`` round collects every worker's conflict-set deltas,
   match stats, and IPC counters, and the merged deltas feed the
   count-based conflict set exactly like the threaded engine's
   (``strict_cs = False``; deltas arrive unordered).

Requires the ``fork`` start method (Linux/macOS): compiled networks
hold closures that cannot cross a ``spawn`` boundary.  Call
:func:`mp_supported` before constructing one; on unsupported platforms
the constructor raises ``RuntimeError``.
"""

from __future__ import annotations

import itertools
import multiprocessing
import pickle
import time
from time import perf_counter
from typing import Dict, List, Optional

from ...obs import context as _context
from ...obs import events as _obs
from ...obs import fabric as _fabric
from ...obs import flight as _flight
from ...obs import meter as _meter
from ...obs.watchdog import ProbeSample, StallWatchdog
from ...ops5.wme import WMEChange
from ...rete.network import ReteNetwork
from ...rete.nodes import CSDelta
from ...rete.stats import MatchStats
from ...rete.token import Token
from .shard import ShardMap
from .worker import run_worker

#: Control-process poll interval while waiting for quiescence: long
#: enough to leave the CPUs to the match processes, short enough to
#: keep batch turnaround (and thus cycle latency) low.
_WAIT_S = 0.0002

#: Process-unique batch sequence numbers, shared by every ProcessMatcher
#: in this control process.  The seq is the fabric's stitch key pairing
#: dispatch spans with worker batch spans; a server hosting several mp
#: sessions merges their lanes into one trace, so per-matcher counters
#: would collide (two sessions' "seq 1" cross-linking each other's
#: batches).
_GLOBAL_SEQ = itertools.count(1)


def mp_supported() -> bool:
    """Whether this platform can run the multiprocess backend."""
    return "fork" in multiprocessing.get_all_start_methods()


class ProcessMatcher:
    """Drop-in multiprocess matcher for the interpreter (`engine=mp`).

    Parameters mirror the paper's axes where they survive the
    translation: ``n_workers`` is the "k" of "1+k"; ``n_lines`` sizes
    both the hash tables and the shard map (the lock-scheme and
    queue-count axes disappear — lines are lock-free by ownership and
    each worker has exactly one inbound pipe).  ``policy`` selects the
    shard *placement* — which worker owns each hash line
    (:mod:`repro.parallel.policy`); only the static ``place_lines``
    half applies here, since routing to a line's owner is what replaces
    the locks.
    """

    #: Deltas arrive unordered; the interpreter must use a count-based
    #: conflict set and validate after each batch (same as threaded).
    strict_cs = False

    def __init__(
        self,
        network: ReteNetwork,
        n_workers: int = 2,
        n_lines: int = 1024,
        policy: str = "round-robin",
        watchdog_s: Optional[float] = None,
        watchdog_dump: Optional[str] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("need at least one match process")
        if not mp_supported():
            raise RuntimeError(
                "the mp engine needs the 'fork' start method; "
                "use engine='threaded' on this platform"
            )
        self.network = network
        self.n_workers = n_workers
        _flight.note_engine("mp", n_workers)
        # The placement policy is baked into the owners table here,
        # before the fork, so every worker inherits the identical map.
        self.shard = ShardMap(n_lines=n_lines, n_workers=n_workers, policy=policy)
        ctx = multiprocessing.get_context("fork")
        self._inboxes = [ctx.SimpleQueue() for _ in range(n_workers)]
        self._results = ctx.SimpleQueue()
        self._taskcount = ctx.Value("q", 0)
        self._seq = 0
        self._shutdown = False
        #: Wall-clock seconds spent inside match (dispatch to merge),
        #: the quantity the speedup scenarios compare across worker
        #: counts — mirrors ``SequentialMatcher.match_seconds``.
        self.match_seconds = 0.0
        #: Last flush's per-worker stats snapshots (cumulative per
        #: worker; replaced, not summed, on every flush).
        self._worker_stats: Dict[int, MatchStats] = {}
        self._ipc_totals: Dict[str, int] = {}
        #: Worker-shipped observability (spans, node profiles, flight
        #: tails), accumulated per worker lane by the trace fabric.
        self.fabric = _fabric.FabricCollector()
        #: Whether the workers currently mirror the control process's
        #: obs flag (synced lazily at each batch boundary).
        self._workers_obs = False
        #: Shared cumulative drained-task counter — the watchdog's
        #: cross-process progress signal.
        self._tasks_done = ctx.Value("q", 0)
        self._procs = [
            ctx.Process(
                target=run_worker,
                args=(wid, network, self.shard, self._inboxes,
                      self._results, self._taskcount, self._tasks_done),
                daemon=True,
                name=f"match-{wid}",
            )
            for wid in range(n_workers)
        ]
        for proc in self._procs:
            proc.start()
        self.watchdog: Optional[StallWatchdog] = None
        if watchdog_s:
            self.watchdog = StallWatchdog(
                self._watchdog_probe,
                engine="mp",
                stall_after_s=watchdog_s,
                dump_path=watchdog_dump,
                worker_tails=self.fabric.flight_tails,
            ).start()

    # -- control-process side -----------------------------------------------

    def process_changes(self, changes: List[WMEChange]) -> List[CSDelta]:
        """Broadcast the batch, wait for quiescence, merge the deltas."""
        if self._shutdown:
            raise RuntimeError("matcher already closed")
        started = perf_counter()
        obs_on = _obs.ENABLED
        if obs_on != self._workers_obs:
            # Safe to interleave: workers are idle on inbox.get()
            # between batches, so the obs message cannot land mid-drain.
            cap = _obs.current_max_events()
            for inbox in self._inboxes:
                inbox.put(("obs", obs_on, cap))
            self._workers_obs = obs_on
        meter_on = _meter.ENABLED
        ctx_ids = _context.current_ids() if (obs_on or meter_on) else None
        if obs_on:
            t0 = _obs.now()
        self._seq = next(_GLOBAL_SEQ)
        _flight.record("mp", "dispatch",
                       {"seq": self._seq, "changes": len(changes)})
        payload = [(c.sign, c.wme) for c in changes]
        with self._taskcount.get_lock():
            self._taskcount.value += self.n_workers
        # The request's ids ride the batch message as a fourth element;
        # each worker stamps them into its batch span, which is what
        # gives stitched traces request-scoped worker lanes.
        for inbox in self._inboxes:
            inbox.put(("changes", self._seq, payload, ctx_ids))
        if meter_on and ctx_ids is not None:
            # Batch-granular IPC accounting: one pickle of the payload
            # stands in for what the pipe actually carried, times the
            # fan-out (the batch is broadcast to every worker).
            _meter.add(
                ctx_ids["session"], "ipc_bytes",
                len(pickle.dumps(payload)) * self.n_workers,
                tenant=ctx_ids["tenant"],
            )
        if obs_on:
            t1 = _obs.now()
            # "seq" is the stitch key pairing this span with the worker
            # batch spans it triggered (repro.obs.fabric).
            _obs.span("mp", "dispatch", t0, t1,
                      args=_context.tag(
                          {"changes": len(changes), "seq": self._seq}))
            _obs.count("mp.batches")
            _obs.count("mp.changes", len(changes))
        self._wait_quiescent()
        if obs_on:
            t2 = _obs.now()
            _obs.span("mp", "quiesce_wait", t1, t2)
        deltas = self._flush(ctx_ids if meter_on else None)
        if obs_on:
            t3 = _obs.now()
            _obs.span("mp", "merge", t2, t3, args={"deltas": len(deltas)})
            _obs.span("mp", "parallel_batch", t0, t3,
                      args=_context.tag({"changes": len(changes)}))
        self.match_seconds += perf_counter() - started
        return deltas

    def _wait_quiescent(self) -> None:
        while self._taskcount.value != 0:
            for proc in self._procs:
                if proc.exitcode is not None:
                    self._raise_worker_failure(proc)
            time.sleep(_WAIT_S)

    @staticmethod
    def _format_error(msg) -> str:
        """Traceback text plus the dead worker's flight-recorder tail
        (its last recorded moments survive the process)."""
        detail = msg[2]
        tail = msg[3] if len(msg) > 3 else None
        if tail:
            lines = [
                f"  {event['engine']}.{event['event']} {event['detail'] or {}}"
                for event in tail
            ]
            detail += (
                f"\nworker flight recorder (last {len(tail)} events):\n"
                + "\n".join(lines)
            )
        return detail

    def _raise_worker_failure(self, proc) -> None:
        detail = ""
        while not self._results.empty():
            msg = self._results.get()
            if msg[0] == "error":
                detail = f"\n{self._format_error(msg)}"
        _flight.record("mp", "worker_death",
                       {"proc": proc.name, "exitcode": proc.exitcode})
        _flight.dump_on_error("worker_death")
        self.close()
        raise RuntimeError(
            f"match process {proc.name} died (exit {proc.exitcode}){detail}"
        )

    def _flush(self, meter_ids: Optional[Dict[str, str]] = None) -> List[CSDelta]:
        for inbox in self._inboxes:
            inbox.put(("flush", self._seq))
        terminals = self.network.terminals
        deltas: List[CSDelta] = []
        pending_total = 0
        seen = 0
        while seen < self.n_workers:
            msg = self._results.get()
            if msg[0] == "error":
                _flight.record("mp", "worker_error", {"wid": msg[1]})
                _flight.dump_on_error("worker_error")
                self.close()
                raise RuntimeError(
                    f"match process failed\n{self._format_error(msg)}"
                )
            _kind, wid, seq, payload, stats, counters, pending, ship = msg
            if seq != self._seq:
                # A reply from an interrupted earlier batch; ignore.
                continue
            seen += 1
            pending_total += pending
            if meter_ids is not None:
                # Reply-direction IPC bytes (deltas + stats + ship),
                # re-pickled once per worker per batch.
                _meter.add(
                    meter_ids["session"], "ipc_bytes",
                    len(pickle.dumps((payload, stats, counters, ship))),
                    tenant=meter_ids["tenant"],
                )
            if ship is not None:
                self.fabric.absorb(wid, ship)
            self._worker_stats[wid] = stats
            for name, n in counters.items():
                self._ipc_totals[name] = self._ipc_totals.get(name, 0) + n
                if _obs.ENABLED and n:
                    _obs.count(f"mp.{name}", n)
            for prod_name, wmes, sign in payload:
                deltas.append(
                    CSDelta(terminals[prod_name].production,
                            Token.of(tuple(wmes)), sign)
                )
        if pending_total:
            raise RuntimeError(
                f"{pending_total} conjugate deletes left parked"
            )
        return deltas

    def _watchdog_probe(self) -> ProbeSample:
        """Cross-process stall probe: the shared TaskCount is the
        pending-work gauge (OS pipes expose no depth), the shared
        drained-task counter the progress signal."""
        alive = {
            proc.name: "alive" if proc.exitcode is None else f"exit {proc.exitcode}"
            for proc in self._procs
        }
        return ProbeSample(
            tasks_done=self._tasks_done.value,
            queues=[("taskcount", self._taskcount.value)],
            lock_holders={},
            extra={"workers": alive, "seq": self._seq},
        )

    # -- observability surfaces ----------------------------------------------

    def obs_merged_snapshot(self):
        """Control snapshot with every worker lane folded in (profiles
        built from this see the workers' match work)."""
        return _fabric.merged_snapshot(_obs.snapshot(), self.fabric)

    def obs_stitched_trace(self):
        """``(chrome_doc, stitch_orphans)`` across all processes."""
        return _fabric.stitch_trace(_obs.snapshot(), self.fabric)

    def close(self) -> None:
        """Kill the match processes (the control process's duty)."""
        if self._shutdown:
            return
        self._shutdown = True
        if self.watchdog is not None:
            self.watchdog.stop()
        for inbox, proc in zip(self._inboxes, self._procs):
            if proc.exitcode is None:
                try:
                    inbox.put(("stop",))
                except (OSError, ValueError):  # pragma: no cover
                    pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.exitcode is None:  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5.0)
        for q in (*self._inboxes, self._results):
            q.close()

    def __enter__(self) -> "ProcessMatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- aggregated measurements ---------------------------------------------

    @property
    def stats(self) -> MatchStats:
        """Merged match statistics across workers, as of the last flush."""
        merged = MatchStats()
        for s in self._worker_stats.values():
            merged.wme_changes += s.wme_changes
            merged.node_activations += s.node_activations
            merged.constant_tests += s.constant_tests
            merged.alpha_passes += s.alpha_passes
            merged.tokens_emitted += s.tokens_emitted
            merged.cs_changes += s.cs_changes
            merged.opp_examined_left += s.opp_examined_left
            merged.opp_count_left += s.opp_count_left
            merged.opp_examined_right += s.opp_examined_right
            merged.opp_count_right += s.opp_count_right
            merged.same_del_examined_left += s.same_del_examined_left
            merged.same_del_count_left += s.same_del_count_left
            merged.same_del_examined_right += s.same_del_examined_right
            merged.same_del_count_right += s.same_del_count_right
            for kind, n in s.activations_by_kind.items():
                merged.activations_by_kind[kind] = (
                    merged.activations_by_kind.get(kind, 0) + n
                )
        return merged

    @property
    def ipc_counters(self) -> Dict[str, int]:
        """Cumulative dispatch/forward/IPC counters across all batches."""
        return dict(self._ipc_totals)
