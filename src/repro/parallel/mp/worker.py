"""The match-process body of the multiprocess engine.

Each worker is a forked child owning one shard of the token hash
memories (the lines :class:`~repro.parallel.mp.shard.ShardMap` assigns
it).  The compiled Rete network arrives by fork inheritance — shared
read-only pages, never pickled — and all mutable match state is
process-private, so no locks exist anywhere on the match path.

Message protocol (inbound, one queue per worker):

``("changes", seq, [(sign, wme), ...], ctx_ids)``
    One WM-change batch, broadcast to every worker.  Each worker runs
    the alpha network over the whole batch (cheap, read-only) and keeps
    exactly the root activations whose line it owns; non-line root
    activations (single-CE terminals) belong to the batch's designated
    worker so they are processed exactly once.  ``ctx_ids`` (None, or
    ``{"req", "session", "tenant"}`` from :mod:`repro.obs.context`) is
    the serve request that caused the batch; workers stamp it into
    their batch spans so stitched traces stay request-scoped across the
    process boundary.  Engines older than the field send 3-tuples; the
    dispatcher tolerates both.

``("act", node_id, side, sign, wmes)``
    A forwarded activation for a line this worker owns, produced by a
    peer whose join emitted a child token landing on our shard.  Peer
    and control process write the same inbox pipe, so an act may
    overtake the ``("changes", ...)`` broadcast it belongs to; that is
    legal — intra-batch order is commutative — and the overtaken
    batch message is deferred, never dropped.

``("flush", seq)``
    Sent by the control process only at quiescence (TaskCount == 0, so
    no task can still be in flight): reply on the results queue with
    the accumulated conflict-set deltas, match stats, IPC counters, the
    conjugate pending-delete count, and the observability *ship* — the
    worker's local spans/node-profiles/flight-tail, snapshotted and
    reset so each ship is a delta (:func:`repro.obs.fabric.build_ship`).

``("obs", enabled, max_events)``
    Mirror the control process's observability state.  Sent only
    between batches (workers are idle on ``inbox.get()`` then), so it
    can never interleave with a drain.

``("stop",)``
    Exit the process loop.

Termination bookkeeping mirrors §3.2's TaskCount: the shared counter
is incremented *before* any task becomes visible (one per worker per
broadcast batch, one per forwarded activation) and decremented only
after the receiving worker has fully drained the task *and* all local
descendants, so the counter reaching zero proves global quiescence.
"""

from __future__ import annotations

import os
import traceback
from typing import Dict, List

from ...obs import events as _obs
from ...obs import fabric as _fabric
from ...obs import flight as _flight
from ...rete.memories import HashMemorySystem
from ...rete.nodes import Activation, MatchContext
from ...rete.stats import MatchStats
from ...rete.token import Token
from ..conjugate import ConjugateMemory
from .shard import ShardMap

#: How many locally-queued activations are processed between inbox
#: polls.  Periodic polling bounds forwarded-task latency; the actual
#: deadlock freedom comes from :meth:`_WorkerState.route_child`
#: absorbing the inbox before every forward, so a worker never blocks
#: writing to a peer while its own pipe holds that peer's pending
#: write.
POLL_EVERY = 64


class _WorkerState:
    """Everything one match process owns: shard memory, stats, queues."""

    def __init__(self, wid, network, shard: ShardMap, inbox, outbox, taskcount):
        self.wid = wid
        self.network = network
        self.shard = shard
        self.inbox = inbox
        self.outbox = outbox
        self.taskcount = taskcount
        self.nodes = {node.node_id: node for node in network.beta_nodes}
        self.memory = ConjugateMemory(HashMemorySystem(n_lines=shard.n_lines))
        self.ctx = MatchContext(self.memory, MatchStats(), strict=False)
        self.local: List[Activation] = []
        #: Forwarded tasks absorbed mid-drain; their TaskCount units are
        #: released together with the batch unit after the drain.
        self.borrowed = 0
        #: Non-act messages pulled off the pipe mid-drain, replayed by
        #: the main loop in arrival order once the drain completes.  A
        #: peer's forwarded act for batch N can land in our pipe ahead
        #: of the control process's ("changes", N) broadcast — two
        #: producers, one pipe — so a drain triggered by that act may
        #: find the batch message behind it.
        self.deferred: List[tuple] = []
        self.stopping = False
        #: Per-flush-window IPC counters (reset after every flush reply).
        self.counters: Dict[str, int] = {
            "tasks_local": 0, "tasks_forwarded": 0, "ipc_msgs": 0,
        }
        self._forward_queues = None  # set by run_worker
        #: Shared cumulative drained-task counter (watchdog progress
        #: signal); None on engines built before the watchdog existed.
        self.tasks_done = None  # set by run_worker

    # -- TaskCount ----------------------------------------------------------

    def _count_add(self, n: int) -> None:
        with self.taskcount.get_lock():
            self.taskcount.value += n

    # -- task routing -------------------------------------------------------

    def route_child(self, act: Activation) -> None:
        node = act.node
        if not node.uses_line():
            # Terminals: no shared line, processed where produced.
            self.local.append(act)
            return
        owner = self.shard.route(node.node_id, node.key_for(act.side, act.token))
        if owner == self.wid:
            self.local.append(act)
        else:
            # Drain our own pipe before the potentially-blocking write
            # into the peer's.  Two workers forwarding heavily to each
            # other can otherwise fill both pipes and block forever in
            # `put` (the rubik hang: both processes in pipe_write,
            # TaskCount frozen).  Emptying our inbox first completes
            # the peer's pending write, so at most one side is ever
            # durably blocked and the other always reaches its next
            # absorb point.
            self.absorb_inbox()
            self._count_add(1)
            self.counters["tasks_forwarded"] += 1
            self.counters["ipc_msgs"] += 1
            self._forward_queues[owner].put(
                ("act", node.node_id, act.side, act.sign, act.token.wmes)
            )

    def rebuild(self, msg) -> Activation:
        _kind, node_id, side, sign, wmes = msg
        return Activation(self.nodes[node_id], side, sign, Token.of(tuple(wmes)))

    # -- the drain loop -----------------------------------------------------

    def drain(self) -> None:
        """Process the local stack to empty, absorbing forwarded tasks."""
        processed = 0
        ctx = self.ctx
        # Stable for the whole drain: the "obs" control message only
        # arrives between batches, never mid-drain.
        obs_on = _obs.ENABLED
        while self.local:
            act = self.local.pop()
            if obs_on:
                t0 = _obs.now()
                children = act.node.activate(ctx, act)
                _obs.node_hit(
                    act.node.node_id,
                    act.node.kind,
                    _obs.now() - t0,
                    ctx.last_opp_examined + ctx.last_same_examined,
                    len(children),
                )
            else:
                children = act.node.activate(ctx, act)
            self.counters["tasks_local"] += 1
            for child in children:
                self.route_child(child)
            processed += 1
            if processed % POLL_EVERY == 0:
                self.absorb_inbox()
        if self.tasks_done is not None and processed:
            with self.tasks_done.get_lock():
                self.tasks_done.value += processed

    def absorb_inbox(self) -> None:
        """Pull any forwarded activations waiting on our pipe.

        Activations are absorbed immediately — intra-batch activation
        order is commutative (count-folded CS deltas, conjugate token
        memory), so running one early is always safe.  Anything else
        (a racing ``changes`` broadcast the act outran, an ``obs``
        toggle) is deferred to the main loop: those must run between
        drains, not inside one.  A ``flush`` can never appear here —
        it is only sent at TaskCount == 0, and we hold at least one
        undecremented unit while draining."""
        while not self.inbox.empty():
            msg = self.inbox.get()
            if msg[0] == "act":
                self.local.append(self.rebuild(msg))
                self.borrowed += 1
            elif msg[0] == "stop":
                self.stopping = True
            else:
                self.deferred.append(msg)

    def finish_units(self, own: int) -> None:
        """Release the batch's TaskCount units after a complete drain."""
        self._count_add(-(own + self.borrowed))
        self.borrowed = 0

    # -- message handlers ---------------------------------------------------

    def on_changes(self, seq: int, payload, ctx_ids=None) -> None:
        obs_on = _obs.ENABLED
        if obs_on:
            t0 = _obs.now()
        _flight.record(
            "mp.worker", "batch",
            {"wid": self.wid, "seq": seq, "changes": len(payload)},
        )
        stats = self.ctx.stats
        n_workers = self.shard.n_workers
        for i, (sign, wme) in enumerate(payload):
            mine = i % n_workers == self.wid
            hits, n_tests = self.network.alpha_dispatch(wme)
            if mine:
                # Alpha work is replicated on every worker; only the
                # change's designated worker counts it, so merged stats
                # match the sequential matcher's.
                stats.wme_changes += 1
                stats.constant_tests += n_tests
                stats.alpha_passes += len(hits)
            token = Token.single(wme)
            for terminal in hits:
                for node, side in terminal.successors:
                    if node.uses_line():
                        key = node.key_for(side, token)
                        if self.shard.route(node.node_id, key) == self.wid:
                            self.local.append(Activation(node, side, sign, token))
                    elif mine:
                        self.local.append(Activation(node, side, sign, token))
        self.drain()
        self.finish_units(1)
        if obs_on:
            # The "seq" arg is the stitch key: the control process's
            # dispatch span for this batch carries the same number.
            args = {"seq": seq, "wid": self.wid, "changes": len(payload)}
            if ctx_ids is not None:
                args.update(ctx_ids)
            _obs.span("mp.worker", "batch", t0, _obs.now(), args=args)

    def on_act(self, msg) -> None:
        self.local.append(self.rebuild(msg))
        self.drain()
        self.finish_units(1)

    def on_flush(self, seq: int) -> None:
        deltas = [
            (d.production.name, d.token.wmes, d.sign)
            for d in self.ctx.cs_deltas
        ]
        self.ctx.cs_deltas = []
        self.outbox.put((
            "deltas",
            self.wid,
            seq,
            deltas,
            self.ctx.stats,
            dict(self.counters),
            self.memory.pending_deletes,
            # The obs ship piggybacks on the flush reply — no extra IPC
            # round trips.  Cheap when obs is off (empty registry).
            _fabric.build_ship(),
        ))
        for key in self.counters:
            self.counters[key] = 0

    def on_obs(self, msg) -> None:
        """Mirror the control process's obs state (between batches)."""
        _kind, want, max_events = msg
        if want:
            _obs.reset()
            _obs.enable(max_events)
            # Per-activation probes (ctx.last_*) only populate under
            # `tracing`; node hot-spots need the examined counts.
            self.ctx.tracing = True
        else:
            _obs.disable()
            _obs.reset()
            self.ctx.tracing = False


def run_worker(wid, network, shard, inboxes, outbox, taskcount,
               tasks_done=None) -> None:
    """Process entry point: loop until ``("stop",)`` or failure.

    Failures are reported on the results queue as
    ``("error", wid, traceback_text, flight_tail)`` before the process
    exits, so the control process can surface the real exception — and
    the worker's last recorded moments — instead of a hang.
    """
    # Obs module state arrived by fork inheritance from the control
    # process; start clean and let the explicit ("obs", ...) protocol
    # drive it, so worker captures never alias the parent's buffers.
    _obs.disable()
    _obs.reset()
    _flight.reset()
    _flight.record("mp.worker", "start", {"wid": wid, "pid": os.getpid()})
    state = _WorkerState(wid, network, shard, inboxes[wid], outbox, taskcount)
    state._forward_queues = inboxes
    state.tasks_done = tasks_done
    try:
        while not state.stopping:
            if state.deferred:
                msg = state.deferred.pop(0)
            else:
                msg = state.inbox.get()
            kind = msg[0]
            if kind == "changes":
                state.on_changes(msg[1], msg[2],
                                 msg[3] if len(msg) > 3 else None)
            elif kind == "act":
                state.on_act(msg)
            elif kind == "flush":
                state.on_flush(msg[1])
            elif kind == "obs":
                state.on_obs(msg)
            elif kind == "stop":
                _flight.record("mp.worker", "stop", {"wid": wid})
                break
            else:  # pragma: no cover - protocol violation
                raise RuntimeError(f"unknown message {kind!r}")
    except BaseException as exc:
        _flight.record(
            "mp.worker", "error",
            {"wid": wid, "error": repr(exc)},
        )
        try:
            state.outbox.put(
                ("error", wid, traceback.format_exc(),
                 _flight.tail(_fabric.SHIP_FLIGHT_TAIL))
            )
        finally:
            raise
