"""The threaded parallel match engine — PSM-E's structure in Python.

One *control process* (the caller's thread, i.e. the interpreter) and
``n_workers`` match threads share:

* the compiled Rete network (read-only at match time),
* the global token hash tables wrapped in
  :class:`~repro.parallel.conjugate.ConjugateMemory` (extra-deletes
  lists for out-of-order conjugate pairs),
* one or more task queues with spin locks,
* the ``TaskCount`` termination counter,
* per-line hash-table locks (simple or MRSW).

The control thread pushes one root task per WM change and then waits
for ``TaskCount`` to reach zero, exactly as in §3.2; match threads loop
pop → process → push, with every memory-touching activation bracketed
by its line's lock.

**Honesty note on speed**: under CPython's GIL this engine demonstrates
the *correctness* of the synchronization design (identical conflict
sets to the sequential matcher under real interleavings) and yields
real contention measurements, but no wall-clock speed-up.  For measured
multi-core speedup use the multiprocess backend
(:mod:`repro.parallel.mp`, ``engine='mp'``), which replaces the line
locks with shard ownership; for modelled Encore-Multimax speedups use
the trace-driven simulator (:mod:`repro.simulator`).
"""

from __future__ import annotations

import threading
import time
from time import perf_counter
from typing import List, Optional

from ..obs import context as _context
from ..obs import events as _obs
from ..obs import flight as _flight
from ..obs import meter as _meter
from ..obs.watchdog import ProbeSample, StallWatchdog
from ..ops5.wme import WMEChange
from ..rete.matcher import SequentialMatcher
from ..rete.memories import HashMemorySystem
from ..rete.network import ReteNetwork
from ..rete.nodes import Activation, CSDelta, JoinNode, MatchContext, NotNode
from ..rete.stats import MatchStats
from ..rete.token import Token
from .conjugate import ConjugateMemory
from .hooks import thread_exit, yield_point
from .locks import LockStats, make_line_locks, set_holder_tracking
from .policy import make_policy
from .taskqueue import TaskCount, TaskQueueSet

_POISON = ("poison",)


class ParallelMatcher:
    """Drop-in matcher for :class:`~repro.ops5.interpreter.Interpreter`.

    Parameters mirror the paper's experimental axes: ``n_workers`` (the
    "k" of "1+k"), ``n_queues`` (1–8), ``lock_scheme`` ('simple' or
    'mrsw'), ``n_lines`` (hash-table size), plus ``policy`` — the task
    dispatch policy from :mod:`repro.parallel.policy` deciding which
    queue each push lands on (and whether pops steal).  Multi-queue
    runs need a line-affinity policy on modify-heavy programs; see
    :data:`repro.parallel.policy.SAFE_QUEUE_MATRIX`.
    """

    #: Conflict-set deltas arrive unordered; the interpreter must use a
    #: count-based conflict set and validate after each batch.
    strict_cs = False

    def __init__(
        self,
        network: ReteNetwork,
        n_workers: int = 2,
        n_queues: int = 1,
        lock_scheme: str = "simple",
        n_lines: int = 256,
        policy: str = "round-robin",
        watchdog_s: Optional[float] = None,
        watchdog_dump: Optional[str] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("need at least one match process")
        self.network = network
        _flight.note_engine("threaded", n_workers)
        self.memory = ConjugateMemory(HashMemorySystem(n_lines=n_lines))
        self.line_locks = make_line_locks(lock_scheme, n_lines)
        self.queues = TaskQueueSet(n_queues)
        self.policy = make_policy(policy)
        self._steals = self.policy.steals
        self._last_rebalances = 0
        self.taskcount = TaskCount()
        self.n_workers = n_workers
        self._ctxs = [
            MatchContext(self.memory, MatchStats(), strict=False) for _ in range(n_workers)
        ]
        self._shutdown = False
        self._failures: List[BaseException] = []
        self._push_seq = 0
        #: Wall-clock seconds spent inside match, mirroring
        #: ``SequentialMatcher.match_seconds`` so ``--stats`` and the
        #: perf scenarios read every engine the same way.
        self.match_seconds = 0.0
        #: Cumulative tasks fully processed across all workers — the
        #: watchdog's progress signal.  A plain int bumped under the
        #: GIL: lost updates are possible and harmless (it only needs
        #: to *advance* while real work happens).
        self.tasks_done = 0
        self._threads = [
            threading.Thread(target=self._worker, args=(i,), daemon=True, name=f"match-{i}")
            for i in range(n_workers)
        ]
        for t in self._threads:
            t.start()
        self.watchdog: Optional[StallWatchdog] = None
        self._holder_tracking = False
        if watchdog_s:
            # Holder names in the stall bundle cost one current_thread()
            # per acquire; pay it only when someone is watching.
            set_holder_tracking(True)
            self._holder_tracking = True
            self.watchdog = StallWatchdog(
                self._watchdog_probe,
                engine="threaded",
                stall_after_s=watchdog_s,
                dump_path=watchdog_dump,
            ).start()

    # -- control-process side -------------------------------------------------

    def process_changes(self, changes: List[WMEChange]) -> List[CSDelta]:
        """Pipeline the changes to the match processes; wait for quiescence."""
        if self._shutdown:
            raise RuntimeError("matcher already closed")
        match_t0 = perf_counter()
        _flight.record("threaded", "batch", {"changes": len(changes)})
        obs_on = _obs.ENABLED
        meter_on = _meter.ENABLED
        if obs_on:
            batch_t0 = _obs.now()
        # Request-scoped task meta: worker threads do not inherit the
        # control thread's contextvar, so capture the active request's
        # ids here and ride them on every task tuple.  The second slot
        # is the push timestamp the workers turn into queue-wait
        # metering; None whenever neither layer is on, so the disabled
        # path allocates nothing.
        meta = None
        if obs_on or meter_on:
            ids = _context.current_ids()
            t_push = _obs.now() if meter_on else 0
            if ids is not None or t_push:
                meta = (ids, t_push)
        # Per-activation probes (ctx.last_*) are only maintained under
        # `tracing`; flip it with the obs flag so worker node hot-spots
        # carry examined-token counts.  Benign cross-thread write: the
        # flag only gates instrumentation granularity.
        for ctx in self._ctxs:
            ctx.tracing = obs_on
        for change in changes:
            self.taskcount.increment()
            # Root WM changes have no hash line yet (alpha dispatch
            # assigns one to each derived activation); the policy sees
            # line=None, pusher=None (the control process).
            self._dispatch(("change", change.sign, change.wme, meta), None, None)
        # The control process becomes idle and waits for the match
        # processes to finish (TaskCount == 0).
        if obs_on:
            wait_t0 = _obs.now()
        while not self.taskcount.zero:
            if self._failures:
                break
            yield_point("quiesce_wait", self.taskcount)
            time.sleep(0)
        if obs_on:
            t1 = _obs.now()
            _obs.span(
                "phase", "match.quiesce_wait", wait_t0, t1,
                args=_context.tag({"changes": len(changes)}),
            )
            _obs.span(
                "phase", "match.parallel_batch", batch_t0, t1,
                args=_context.tag({"changes": len(changes)}),
            )
        if self._failures:
            failure = self._failures[0]
            _flight.record(
                "threaded", "worker_failure", {"error": repr(failure)}
            )
            _flight.dump_on_error("worker_failure")
            self.close()
            raise RuntimeError("match process failed") from failure
        deltas: List[CSDelta] = []
        for ctx in self._ctxs:
            deltas.extend(ctx.cs_deltas)
            ctx.cs_deltas = []
        if self.memory.pending_deletes:
            raise RuntimeError(
                f"{self.memory.pending_deletes} conjugate deletes left parked"
            )
        if obs_on:
            rebalances = self.policy.rebalances
            if rebalances > self._last_rebalances:
                _obs.count("policy.rebalance", rebalances - self._last_rebalances)
            self._last_rebalances = rebalances
        self.match_seconds += perf_counter() - match_t0
        return deltas

    def close(self) -> None:
        """Kill the match processes (the control process's end-of-run duty)."""
        if self._shutdown:
            return
        self._shutdown = True
        if self.watchdog is not None:
            self.watchdog.stop()
        if self._holder_tracking:
            set_holder_tracking(False)
        for _ in self._threads:
            self.queues.push(_POISON, home=self._next_home())
        for t in self._threads:
            t.join(timeout=10.0)

    def __enter__(self) -> "ParallelMatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _next_home(self) -> int:
        self._push_seq += 1
        return self._push_seq

    def _dispatch(self, task, line: Optional[int], pusher: Optional[int]) -> None:
        """Push one task to the queue the dispatch policy selects."""
        home = self.policy.home_for(line, pusher, self._next_home(), self.queues.views)
        self.queues.push(task, home=home)

    def policy_counters(self) -> dict:
        """Policy-layer telemetry: steal/rebalance totals and the queue
        imbalance high-water mark, alongside push/pop conservation
        counts (pushed == popped once quiescent and closed)."""
        return {
            "policy": self.policy.name,
            "n_queues": self.queues.n_queues,
            "pushed": self.queues.pushed,
            "popped": self.queues.popped,
            "steals": self.queues.stolen,
            "rebalances": self.policy.rebalances,
            "max_queue_depth": self.queues.max_depth,
        }

    def _watchdog_probe(self) -> ProbeSample:
        """Cheap point-in-time progress reading for the stall watchdog
        (racy reads throughout — precision is not the point)."""
        queues = [
            (f"queue[{i}]", depth)
            for i, depth in enumerate(self.queues.depths())
        ]
        # TaskCount is queued + in-flight work: it keeps `pending`
        # nonzero during a livelock whose tasks are mid-requeue (the
        # queues themselves can look momentarily empty).
        queues.append(("taskcount", self.taskcount.value))
        holders = dict(self.queues.holders())
        tc_holder = self.taskcount.holder
        if tc_holder is not None:
            holders["taskcount"] = tc_holder
        holders.update(self.line_locks.holders())
        return ProbeSample(
            tasks_done=self.tasks_done,
            queues=queues,
            lock_holders=holders,
            extra={
                "workers_alive": sum(t.is_alive() for t in self._threads),
                "n_workers": self.n_workers,
                "failures": len(self._failures),
                "policy": self.policy.name,
                "steals": self.queues.stolen,
                "rebalances": self.policy.rebalances,
                "max_queue_depth": self.queues.max_depth,
            },
        )

    # -- aggregated measurements ----------------------------------------------

    @property
    def stats(self) -> MatchStats:
        merged = MatchStats()
        for ctx in self._ctxs:
            s = ctx.stats
            merged.wme_changes += s.wme_changes
            merged.node_activations += s.node_activations
            merged.constant_tests += s.constant_tests
            merged.alpha_passes += s.alpha_passes
            merged.tokens_emitted += s.tokens_emitted
            merged.cs_changes += s.cs_changes
            merged.opp_examined_left += s.opp_examined_left
            merged.opp_count_left += s.opp_count_left
            merged.opp_examined_right += s.opp_examined_right
            merged.opp_count_right += s.opp_count_right
            merged.same_del_examined_left += s.same_del_examined_left
            merged.same_del_count_left += s.same_del_count_left
            merged.same_del_examined_right += s.same_del_examined_right
            merged.same_del_count_right += s.same_del_count_right
            for kind, n in s.activations_by_kind.items():
                merged.activations_by_kind[kind] = (
                    merged.activations_by_kind.get(kind, 0) + n
                )
        return merged

    def queue_lock_stats(self) -> LockStats:
        return self.queues.lock_stats()

    def line_lock_stats(self) -> LockStats:
        return self.line_locks.stats()

    # -- match-process side -----------------------------------------------------

    def _worker(self, wid: int) -> None:
        ctx = self._ctxs[wid]
        try:
            while True:
                task = self.queues.pop(home=wid, steal=self._steals)
                if task is None:
                    if self._shutdown:
                        return
                    yield_point("worker_idle", wid)
                    time.sleep(0)
                    continue
                if task[0] == "poison":
                    return
                meta = task[-1]
                if meta is not None and meta[1] and _meter.ENABLED:
                    ids = meta[0]
                    if ids is not None:
                        # Queue-wait attribution: push-to-pop latency,
                        # charged to the request that caused the task.
                        # Requeued tasks accrue each trip (see
                        # _push_children's re-stamp).
                        _meter.add(
                            ids["session"], "queue_wait_s",
                            (_obs.now() - meta[1]) * 1e-9,
                            tenant=ids["tenant"],
                        )
                if _obs.ENABLED:
                    self._run_task_obs(ctx, wid, task)
                elif task[0] == "change":
                    self._do_change(ctx, wid, task)
                else:
                    self._do_activation(ctx, wid, task)
                self.taskcount.decrement()
                self.tasks_done += 1
        except BaseException as exc:  # noqa: BLE001 - reported to control
            self._failures.append(exc)
        finally:
            thread_exit()

    def _run_task_obs(self, ctx: MatchContext, wid: int, task) -> None:
        """Instrumented twin of the worker dispatch: one span per task
        (the Chrome-trace worker timeline) plus per-node hot-spots."""
        t0 = _obs.now()
        ids = task[-1][0] if task[-1] is not None else None
        if task[0] == "change":
            self._do_change(ctx, wid, task)
            _obs.span("task", "wm_change", t0, _obs.now(),
                      args=_context.tag_ids(None, ids))
            return
        act: Activation = task[1]
        n_children = self._do_activation(ctx, wid, task)
        t1 = _obs.now()
        node = act.node
        if n_children is None:
            # MRSW told us to requeue; the task was not processed.
            _obs.count("task.requeued")
            _obs.span("task", "requeue", t0, t1,
                      args=_context.tag_ids({"node": node.node_id}, ids))
            return
        _obs.node_hit(
            node.node_id,
            node.kind,
            t1 - t0,
            ctx.last_opp_examined + ctx.last_same_examined,
            n_children,
        )
        _obs.span("task", node.kind, t0, t1,
                  args=_context.tag_ids({"node": node.node_id}, ids))

    def _push_children(
        self, wid: int, children: List[Activation], meta=None
    ) -> None:
        if meta is not None and meta[1]:
            # Re-stamp the push time so child queue-wait measures this
            # push, not the ancestor's (one tuple per sibling group).
            meta = (meta[0], _obs.now())
        need_line = self.policy.needs_line
        for child in children:
            line = None
            if need_line:
                node = child.node
                if node.uses_line():
                    # Line-affinity routing pays one extra key hash per
                    # push; the processing side recomputes it under the
                    # line lock anyway.
                    line = self.memory.line_of(
                        node.node_id, node.key_for(child.side, child.token)
                    )
            self.taskcount.increment()
            self._dispatch(("act", child, meta), line, wid)

    def _do_change(self, ctx: MatchContext, wid: int, task) -> None:
        _kind, sign, wme, meta = task
        ctx.stats.wme_changes += 1
        hits, n_tests = self.network.alpha_dispatch(wme)
        ctx.stats.constant_tests += n_tests
        ctx.stats.alpha_passes += len(hits)
        token = Token.single(wme)
        children = [
            Activation(node, side, sign, token)
            for terminal in hits
            for node, side in terminal.successors
        ]
        self._push_children(wid, children, meta)

    def _do_activation(self, ctx: MatchContext, wid: int, task) -> Optional[int]:
        """Process one activation task; returns the number of child
        tasks pushed, or None when MRSW line locking requeued the task
        unprocessed (the observability layer tells these apart)."""
        act: Activation = task[1]
        meta = task[2]
        node = act.node
        if not node.uses_line():
            children = node.activate(ctx, act)
            self._push_children(wid, children, meta)
            return len(children)

        key = node.key_for(act.side, act.token)
        line = self.memory.line_of(node.node_id, key)
        if not self.line_locks.enter(line, act.side):
            # MRSW: tokens from the other side are being processed on
            # this line — put the task back on a queue and move on.
            self.taskcount.increment()
            self._dispatch(task, line if self.policy.needs_line else None, wid)
            return None
        try:
            if isinstance(node, JoinNode):
                self.line_locks.enter_modify(line)
                try:
                    proceed = node.update_memory(ctx, act, key)
                finally:
                    self.line_locks.exit_modify(line)
                children = node.search_opposite(ctx, act, key) if proceed else []
            else:
                # Negated nodes mutate left-entry counts during the
                # search, so the whole activation holds the
                # modification lock.
                self.line_locks.enter_modify(line)
                try:
                    children = node.activate(ctx, act)
                finally:
                    self.line_locks.exit_modify(line)
        finally:
            self.line_locks.exit(line, act.side)
        self._push_children(wid, children, meta)
        return len(children)
