"""The threaded parallel match runtime: spin locks, task queues,
conjugate-pair handling, and the PSM-E-structured parallel engine."""

from . import hooks
from .conjugate import ConjugateMemory
from .engine import ParallelMatcher
from .locks import LockStats, MRSWLineLocks, SimpleLineLocks, SpinLock, make_line_locks
from .taskqueue import TaskCount, TaskQueueSet

__all__ = [
    "ConjugateMemory",
    "LockStats",
    "MRSWLineLocks",
    "ParallelMatcher",
    "SimpleLineLocks",
    "SpinLock",
    "TaskCount",
    "TaskQueueSet",
    "hooks",
    "make_line_locks",
]
