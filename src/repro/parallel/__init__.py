"""The threaded parallel match runtime: spin locks, task queues,
conjugate-pair handling, and the PSM-E-structured parallel engine."""

from . import hooks
from .conjugate import ConjugateMemory
from .engine import ParallelMatcher
from .locks import LockStats, MRSWLineLocks, SimpleLineLocks, SpinLock, make_line_locks
from .policy import POLICY_NAMES, SAFE_QUEUE_MATRIX, Policy, make_policy
from .taskqueue import TaskCount, TaskQueueSet

__all__ = [
    "ConjugateMemory",
    "LockStats",
    "MRSWLineLocks",
    "POLICY_NAMES",
    "ParallelMatcher",
    "Policy",
    "SAFE_QUEUE_MATRIX",
    "SimpleLineLocks",
    "SpinLock",
    "TaskCount",
    "TaskQueueSet",
    "hooks",
    "make_line_locks",
    "make_policy",
]
