"""Conjugate token pair handling — the extra-deletes lists (§3.2).

In a parallel matcher tokens are not processed in generation order, so
a ``-`` (delete) token can reach a two-input node before the ``+`` it
cancels.  The paper's solution: park the early delete on the line's
*extra-deletes list*; when the matching ``+`` arrives, both are
discarded without further processing.

:class:`ConjugateMemory` wraps any memory system with that behaviour:

* ``remove`` that finds no target parks the token key and reports
  ``(None, examined)`` — the node then stops (no join);
* ``insert`` first consults the parked deletes; on a hit it removes the
  parked entry and returns ``False`` ("annihilated") so the node stops.

All calls for a given (node, side, key) happen under that line's lock
in the parallel engine, so the parked-delete dict needs no locking of
its own beyond the GIL-atomicity of individual dict operations.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .hooks import yield_point


class ConjugateMemory:
    """Memory-system wrapper adding extra-deletes lists."""

    def __init__(self, inner) -> None:
        self.inner = inner
        self.kind = inner.kind
        self._parked: Dict[Tuple[int, str, tuple], List[tuple]] = {}
        self.annihilations = 0
        self.parked_total = 0

    # -- wrapped operations -------------------------------------------------

    def insert(self, node_id: int, side: str, key: tuple, item) -> bool:
        yield_point("mem_insert", (node_id, side, key))
        parked = self._parked.get((node_id, side, key))
        if parked:
            try:
                parked.remove(item.key)
            except ValueError:
                pass
            else:
                self.annihilations += 1
                if not parked:
                    self._parked.pop((node_id, side, key), None)
                return False
        return self.inner.insert(node_id, side, key, item)

    def remove(self, node_id: int, side: str, key: tuple, token_key: tuple):
        yield_point("mem_remove", (node_id, side, key))
        found, examined = self.inner.remove(node_id, side, key, token_key)
        if found is None:
            self._parked.setdefault((node_id, side, key), []).append(token_key)
            self.parked_total += 1
        return found, examined

    # -- passthroughs ---------------------------------------------------------

    def lookup_opposite(self, node_id: int, side: str, key: tuple):
        return self.inner.lookup_opposite(node_id, side, key)

    def side_size(self, node_id: int, side: str) -> int:
        return self.inner.side_size(node_id, side)

    def items(self, node_id: int, side: str):
        return self.inner.items(node_id, side)

    def line_of(self, node_id: int, key: tuple) -> int:
        return self.inner.line_of(node_id, key)

    def total_tokens(self) -> int:
        return self.inner.total_tokens()

    def clear(self) -> None:
        self.inner.clear()
        self._parked.clear()

    @property
    def pending_deletes(self) -> int:
        """Parked deletes not yet annihilated (must be 0 after a cycle)."""
        return sum(len(v) for v in self._parked.values())
