"""Synchronization primitives for the threaded parallel matcher (§3.2).

The paper uses explicit interlocked test-and-set instructions rather
than OS primitives, with a *test and test-and-set* discipline: spin on
ordinary reads (served from cache) and attempt the interlocked write
only when the lock looks free.  :class:`SpinLock` mirrors that
structure — a plain attribute read is the "test", a non-blocking
``acquire`` the "test-and-set" — and counts spins per acquisition,
which is exactly the contention metric of Tables 4-7 and 4-9.

Two hash-table *line* locking schemes guard the token hash tables:

* :class:`SimpleLineLocks` — one Free/Taken flag per line; the holder
  performs the entire memory operation inside (first scheme of §3.2);
* :class:`MRSWLineLocks` — the multiple-reader-single-writer variant:
  a per-line flag (Unused/Left/Right) plus user counter behind a guard
  lock, and a separate modification lock serializing destructive list
  updates; a process finding the line busy with tokens from the other
  side gives up and requeues its task (second scheme of §3.2).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from time import sleep as _sleep
from typing import Dict, List, Optional, Tuple

from .hooks import yield_point
from ..obs import events as _obs

UNUSED = 0
LEFT_IN_USE = 1
RIGHT_IN_USE = 2

_SIDE_STATE = {"L": LEFT_IN_USE, "R": RIGHT_IN_USE}

#: When a stall watchdog is attached (see
#: :class:`repro.obs.watchdog.StallWatchdog`), spin locks record the
#: holding thread's name so the diagnostic bundle can print a
#: lock-holder table.  Off by default: ``current_thread()`` on every
#: acquire is measurable on the hottest path in the tree.
HOLDER_TRACKING = False


def set_holder_tracking(on: bool) -> None:
    global HOLDER_TRACKING
    HOLDER_TRACKING = on


@dataclass
class LockStats:
    """Spin counts per acquisition — the paper's contention measure.

    ``contended`` counts the acquisitions that did *not* succeed on the
    first test-and-set (i.e. the caller observed the lock busy or lost
    an interlocked attempt at least once), so
    ``contended / acquisitions`` is a true contention ratio rather than
    the mean-spins proxy alone.
    """

    acquisitions: int = 0
    spins: int = 0
    requeues: int = 0
    contended: int = 0

    @property
    def mean_spins(self) -> float:
        return self.spins / self.acquisitions if self.acquisitions else 0.0

    @property
    def uncontended(self) -> int:
        return self.acquisitions - self.contended

    @property
    def contention_ratio(self) -> float:
        return self.contended / self.acquisitions if self.acquisitions else 0.0

    def merge(self, other: "LockStats") -> None:
        self.acquisitions += other.acquisitions
        self.spins += other.spins
        self.requeues += other.requeues
        self.contended += other.contended


class SpinLock:
    """Test-and-test-and-set spin lock with spin counting.

    The counters are updated while the lock is held, so they need no
    extra synchronization.  ``label`` names the lock *site* ("queue",
    "line", ...) for the observability layer, which — only while
    :mod:`repro.obs.events` is enabled — times each acquisition's wait
    (spin duration) and hold (acquire→release) and aggregates them per
    label into the timed contention profiles of ``repro top``.
    """

    __slots__ = ("_lock", "_busy", "stats", "label", "_t_acq", "_wait_ns",
                 "_contended_acq", "holder")

    def __init__(self, label: str = "lock") -> None:
        self._lock = threading.Lock()
        self._busy = False
        self.stats = LockStats()
        self.label = label
        #: Holding thread's name while HOLDER_TRACKING is on, else None.
        self.holder: Optional[str] = None
        # Observability state for the acquisition in flight; _t_acq is
        # 0 whenever obs was disabled at acquire time, making the
        # release-path check a single attribute read.
        self._t_acq = 0
        self._wait_ns = 0
        self._contended_acq = False

    def acquire(self) -> int:
        """Spin until acquired; returns the number of spins (>= 1)."""
        spins = 1
        obs_on = _obs.ENABLED
        t0 = _obs.now() if obs_on else 0
        yield_point("lock_acquire", self)
        while True:
            # "test": spin on an ordinary read while the lock is busy.
            while self._busy:
                spins += 1
                yield_point("lock_spin", self)
                if spins % 128 == 0:
                    # Under the GIL a pure busy-wait can starve the
                    # holder for a whole switch interval; yield
                    # explicitly (the Nanobus never had this problem).
                    _sleep(0)
            # "test-and-set": the interlocked attempt.
            if self._lock.acquire(False):
                self._busy = True
                if HOLDER_TRACKING:
                    self.holder = threading.current_thread().name
                stats = self.stats
                stats.acquisitions += 1
                stats.spins += spins
                if spins > 1:
                    stats.contended += 1
                if obs_on:
                    t1 = _obs.now()
                    self._wait_ns = t1 - t0
                    self._t_acq = t1
                    self._contended_acq = spins > 1
                return spins
            spins += 1
            yield_point("lock_spin", self)

    def release(self) -> None:
        if self._t_acq:
            _obs.lock_hit(
                self.label,
                self._wait_ns,
                _obs.now() - self._t_acq,
                self._contended_acq,
            )
            self._t_acq = 0
        if self.holder is not None:
            self.holder = None
        self._busy = False
        self._lock.release()
        yield_point("lock_release", self)

    def __enter__(self) -> "SpinLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class SimpleLineLocks:
    """One Free/Taken flag per hash-table line (simple scheme)."""

    name = "simple"

    def __init__(self, n_lines: int) -> None:
        self.n_lines = n_lines
        self._locks = [SpinLock(label="line") for _ in range(n_lines)]

    def enter(self, line: int, side: str) -> bool:
        """Take the line for the whole operation.  Always succeeds
        (returns True) after spinning; ``side`` is ignored."""
        self._locks[line % self.n_lines].acquire()
        return True

    def enter_modify(self, line: int) -> None:
        """No separate modification lock: the line flag covers it."""

    def exit_modify(self, line: int) -> None:
        pass

    def exit(self, line: int, side: str) -> None:
        self._locks[line % self.n_lines].release()

    def stats(self) -> LockStats:
        merged = LockStats()
        for lock in self._locks:
            merged.merge(lock.stats)
        return merged

    def stats_per_line(self) -> List[LockStats]:
        return [lock.stats for lock in self._locks]

    def holders(self) -> Dict[str, str]:
        """Currently-held line locks (empty unless HOLDER_TRACKING)."""
        return {
            f"line[{i}]": lock.holder
            for i, lock in enumerate(self._locks)
            if lock.holder is not None
        }


class MRSWLineLocks:
    """Multiple-reader-single-writer line locks (complex scheme).

    Per line: a guard :class:`SpinLock` protecting ``(flag, counter)``,
    and a modification :class:`SpinLock` serializing destructive token
    list updates.  ``enter`` returns False — *requeue the task* — when
    the line is processing tokens from the opposite side.
    """

    name = "mrsw"

    def __init__(self, n_lines: int) -> None:
        self.n_lines = n_lines
        self._guards = [SpinLock(label="line_guard") for _ in range(n_lines)]
        self._mods = [SpinLock(label="line_mod") for _ in range(n_lines)]
        self._flags = [UNUSED] * n_lines
        self._counts = [0] * n_lines

    def enter(self, line: int, side: str) -> bool:
        line %= self.n_lines
        want = _SIDE_STATE[side]
        guard = self._guards[line]
        guard.acquire()
        flag = self._flags[line]
        if flag != UNUSED and flag != want:
            guard.stats.requeues += 1
            guard.release()
            return False
        self._flags[line] = want
        self._counts[line] += 1
        guard.release()
        return True

    def enter_modify(self, line: int) -> None:
        self._mods[line % self.n_lines].acquire()

    def exit_modify(self, line: int) -> None:
        self._mods[line % self.n_lines].release()

    def exit(self, line: int, side: str) -> None:
        line %= self.n_lines
        guard = self._guards[line]
        guard.acquire()
        self._counts[line] -= 1
        if self._counts[line] == 0:
            self._flags[line] = UNUSED
        guard.release()

    def stats(self) -> LockStats:
        merged = LockStats()
        for lock in self._guards:
            merged.merge(lock.stats)
        for lock in self._mods:
            merged.merge(lock.stats)
        return merged

    def stats_per_line(self) -> List[LockStats]:
        out = []
        for guard, mod in zip(self._guards, self._mods):
            merged = LockStats()
            merged.merge(guard.stats)
            merged.merge(mod.stats)
            out.append(merged)
        return out

    def holders(self) -> Dict[str, str]:
        """Currently-held guard/mod locks (empty unless HOLDER_TRACKING)."""
        held = {}
        for i, (guard, mod) in enumerate(zip(self._guards, self._mods)):
            if guard.holder is not None:
                held[f"line_guard[{i}]"] = guard.holder
            if mod.holder is not None:
                held[f"line_mod[{i}]"] = mod.holder
        return held


def make_line_locks(scheme: str, n_lines: int):
    if scheme == "simple":
        return SimpleLineLocks(n_lines)
    if scheme == "mrsw":
        return MRSWLineLocks(n_lines)
    raise ValueError(f"unknown line-lock scheme {scheme!r}")
