"""Synchronization primitives for the threaded parallel matcher (§3.2).

The paper uses explicit interlocked test-and-set instructions rather
than OS primitives, with a *test and test-and-set* discipline: spin on
ordinary reads (served from cache) and attempt the interlocked write
only when the lock looks free.  :class:`SpinLock` mirrors that
structure — a plain attribute read is the "test", a non-blocking
``acquire`` the "test-and-set" — and counts spins per acquisition,
which is exactly the contention metric of Tables 4-7 and 4-9.

Two hash-table *line* locking schemes guard the token hash tables:

* :class:`SimpleLineLocks` — one Free/Taken flag per line; the holder
  performs the entire memory operation inside (first scheme of §3.2);
* :class:`MRSWLineLocks` — the multiple-reader-single-writer variant:
  a per-line flag (Unused/Left/Right) plus user counter behind a guard
  lock, and a separate modification lock serializing destructive list
  updates; a process finding the line busy with tokens from the other
  side gives up and requeues its task (second scheme of §3.2).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from time import sleep as _sleep
from typing import Dict, List, Optional, Tuple

from .hooks import yield_point

UNUSED = 0
LEFT_IN_USE = 1
RIGHT_IN_USE = 2

_SIDE_STATE = {"L": LEFT_IN_USE, "R": RIGHT_IN_USE}


@dataclass
class LockStats:
    """Spin counts per acquisition — the paper's contention measure."""

    acquisitions: int = 0
    spins: int = 0
    requeues: int = 0

    @property
    def mean_spins(self) -> float:
        return self.spins / self.acquisitions if self.acquisitions else 0.0

    def merge(self, other: "LockStats") -> None:
        self.acquisitions += other.acquisitions
        self.spins += other.spins
        self.requeues += other.requeues


class SpinLock:
    """Test-and-test-and-set spin lock with spin counting.

    The counters are updated while the lock is held, so they need no
    extra synchronization.
    """

    __slots__ = ("_lock", "_busy", "stats")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._busy = False
        self.stats = LockStats()

    def acquire(self) -> int:
        """Spin until acquired; returns the number of spins (>= 1)."""
        spins = 1
        yield_point("lock_acquire", self)
        while True:
            # "test": spin on an ordinary read while the lock is busy.
            while self._busy:
                spins += 1
                yield_point("lock_spin", self)
                if spins % 128 == 0:
                    # Under the GIL a pure busy-wait can starve the
                    # holder for a whole switch interval; yield
                    # explicitly (the Nanobus never had this problem).
                    _sleep(0)
            # "test-and-set": the interlocked attempt.
            if self._lock.acquire(False):
                self._busy = True
                self.stats.acquisitions += 1
                self.stats.spins += spins
                return spins
            spins += 1
            yield_point("lock_spin", self)

    def release(self) -> None:
        self._busy = False
        self._lock.release()
        yield_point("lock_release", self)

    def __enter__(self) -> "SpinLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class SimpleLineLocks:
    """One Free/Taken flag per hash-table line (simple scheme)."""

    name = "simple"

    def __init__(self, n_lines: int) -> None:
        self.n_lines = n_lines
        self._locks = [SpinLock() for _ in range(n_lines)]

    def enter(self, line: int, side: str) -> bool:
        """Take the line for the whole operation.  Always succeeds
        (returns True) after spinning; ``side`` is ignored."""
        self._locks[line % self.n_lines].acquire()
        return True

    def enter_modify(self, line: int) -> None:
        """No separate modification lock: the line flag covers it."""

    def exit_modify(self, line: int) -> None:
        pass

    def exit(self, line: int, side: str) -> None:
        self._locks[line % self.n_lines].release()

    def stats(self) -> LockStats:
        merged = LockStats()
        for lock in self._locks:
            merged.merge(lock.stats)
        return merged

    def stats_per_line(self) -> List[LockStats]:
        return [lock.stats for lock in self._locks]


class MRSWLineLocks:
    """Multiple-reader-single-writer line locks (complex scheme).

    Per line: a guard :class:`SpinLock` protecting ``(flag, counter)``,
    and a modification :class:`SpinLock` serializing destructive token
    list updates.  ``enter`` returns False — *requeue the task* — when
    the line is processing tokens from the opposite side.
    """

    name = "mrsw"

    def __init__(self, n_lines: int) -> None:
        self.n_lines = n_lines
        self._guards = [SpinLock() for _ in range(n_lines)]
        self._mods = [SpinLock() for _ in range(n_lines)]
        self._flags = [UNUSED] * n_lines
        self._counts = [0] * n_lines

    def enter(self, line: int, side: str) -> bool:
        line %= self.n_lines
        want = _SIDE_STATE[side]
        guard = self._guards[line]
        guard.acquire()
        flag = self._flags[line]
        if flag != UNUSED and flag != want:
            guard.stats.requeues += 1
            guard.release()
            return False
        self._flags[line] = want
        self._counts[line] += 1
        guard.release()
        return True

    def enter_modify(self, line: int) -> None:
        self._mods[line % self.n_lines].acquire()

    def exit_modify(self, line: int) -> None:
        self._mods[line % self.n_lines].release()

    def exit(self, line: int, side: str) -> None:
        line %= self.n_lines
        guard = self._guards[line]
        guard.acquire()
        self._counts[line] -= 1
        if self._counts[line] == 0:
            self._flags[line] = UNUSED
        guard.release()

    def stats(self) -> LockStats:
        merged = LockStats()
        for lock in self._guards:
            merged.merge(lock.stats)
        for lock in self._mods:
            merged.merge(lock.stats)
        return merged

    def stats_per_line(self) -> List[LockStats]:
        out = []
        for guard, mod in zip(self._guards, self._mods):
            merged = LockStats()
            merged.merge(guard.stats)
            merged.merge(mod.stats)
            out.append(merged)
        return out


def make_line_locks(scheme: str, n_lines: int):
    if scheme == "simple":
        return SimpleLineLocks(n_lines)
    if scheme == "mrsw":
        return MRSWLineLocks(n_lines)
    raise ValueError(f"unknown line-lock scheme {scheme!r}")
