"""Pluggable scheduling/placement policies for the parallel engines.

The paper's speedup hinges on *where* match work runs: which worker
owns a token hash line (the mp backend's shard routing), and which
task queue a spawned activation lands on (the threaded engine and the
Encore simulator).  Both decisions used to be hard-coded — round-robin
line ownership in :class:`~repro.parallel.mp.shard.ShardMap`, round-
robin pushes with scan-stealing pops in the threaded engine — which
left the placement axis unexplorable and the threaded engine pinned to
one task queue (multi-queue rubik livelocks under round-robin routing;
see :data:`SAFE_QUEUE_MATRIX`).

A :class:`Policy` packages both decisions behind one small interface,
mirroring the ray-scheduler-prototype's registry of interchangeable
schedulers replayed over one trace:

``place_lines(n_lines, n_workers)``
    Static shard placement — the ``line -> owner worker`` map the mp
    backend partitions token memories by.  Must be a pure function of
    its arguments (every forked process must compute the same map), so
    all placement is decided at construction time.

``home_for(line, pusher, seq, queues)``
    Dynamic task dispatch — which queue a task is pushed to.  ``line``
    is the task's hash line (``None`` for line-less tasks: root WM
    changes, terminal activations), ``pusher`` the pushing worker id
    (``None`` for the control process), ``seq`` a monotone push
    sequence number, ``queues`` the live queue sequence (only
    ``len(queues[i])`` may be read — depths are racy snapshots, good
    enough for load heuristics).

Registered policies (:data:`POLICY_NAMES`):

``round-robin``
    The historical default: pushes deal queues in sequence order,
    lines deal to workers modulo.  No load feedback — **livelocks
    modify-heavy programs (rubik) when every queue is some worker's
    dedicated home** (``n_queues == n_workers``): each worker's LIFO
    pops mostly ride its own freshest pushes, the two workers follow
    disjoint subtrees of one modify's ``+``/``-`` halves, and the
    parked conjugate-delete lists grow until every insert rescans them
    (the pinned schedck reproduction in
    ``tests/schedck/test_rubik_livelock.py``).

``affinity``
    Hash-line locality: a task is routed to ``line % n_queues``, so
    every activation touching one line serializes through one queue —
    the paper's per-line mutual exclusion recast as routing.  Places
    lines in contiguous blocks per worker (the mp layout axis).
    Locality alone does *not* break the divergence livelock: the
    queues are LIFO, so a conjugate delete pushed later still
    overtakes its insert inside the same stack, and at ``n_queues ==
    n_workers`` affinity livelocks rubik exactly like round-robin.
    With an extra steal-only overflow queue (``n_queues >
    n_workers``) it is fast and stable.

``least-loaded``
    Shallowest-queue dispatch (ties break to the lowest index), the
    classic load-balancing baseline.  The depth feedback keeps every
    queue shallow, which both mixes the workers' streams and bounds
    how far a conjugate pair can spread — it survives the dedicated-
    home alignment that kills round-robin.

``work-stealing``
    Producers push to their own queue (the control process deals
    round-robin); consumers pop home-first and steal from peers when
    empty.  Keeps spawned work cache-warm like the paper's LIFO
    queues; at ``n_queues == n_workers`` it completes rubik but with
    heavy run-to-run variance (two depth-first racers), so its
    conformance pin keeps an overflow queue.

``rebalance``
    Hot-shard rebalancing on top of affinity: route by line unless the
    line's home queue is *hot* (deeper than ``hot_depth`` and more
    than twice the shallowest queue), then spill to the least-loaded
    queue and count a rebalance.  This is the policy that
    demonstrably fixes the livelock alignment: with 2 workers and 2
    dedicated queues — where round-robin and plain affinity both hang
    rubik past any budget — the hot spill keeps the stacks shallow
    and mixed and the run completes in ~1 s (see
    ``tests/schedck/test_rubik_livelock.py`` and the policyck
    battery).

All policies steal on pop (``steals = True``): an idle worker scans
peer queues rather than spinning on an empty home queue, so no policy
can strand queued work.  Policy objects are cheap, per-matcher, and
carry only counters as mutable state; :func:`make_policy` builds one
from its registry name.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

#: Every registered policy name, in documentation order — the registry
#: the CLI ``--policy`` flags, the serve ``open`` verb, the conformance
#: matrix, and the policyck battery validate against.
POLICY_NAMES: Tuple[str, ...] = (
    "round-robin",
    "affinity",
    "least-loaded",
    "work-stealing",
    "rebalance",
)

#: Threaded-engine queue counts at which each policy passes the full
#: conformance battery (2 workers) fast and repeatably — the
#: per-policy successor of the old blanket ``n_queues=1`` pin.
#: Empirical basis (rubik n_moves=4 seed=1988, 2 workers, 5-6 runs
#: per cell): round-robin and affinity both run >60 s (livelock) at
#: ``n_queues == n_workers`` but finish in ~0.4 s with a steal-only
#: overflow queue (3); least-loaded and rebalance finish the
#: dedicated-home alignment (2) in ~0.6-1.4 s because depth feedback
#: keeps the stacks shallow; work-stealing completes at 2 but with
#: ~0.5-6 s variance, so its pin keeps the overflow queue.
#: Round-robin stays at one queue on purpose: it is the naive
#: baseline whose multi-queue failure is reproduced deterministically
#: in ``tests/schedck/test_rubik_livelock.py``, and one queue is its
#: only alignment-proof configuration.
SAFE_QUEUE_MATRIX = {
    "round-robin": 1,
    "affinity": 3,
    "least-loaded": 2,
    "work-stealing": 3,
    "rebalance": 2,
}


class Policy:
    """Base policy: shard placement plus task dispatch.

    Subclasses set ``name`` and override the two decision methods.
    ``needs_line`` tells the engine whether to compute a task's hash
    line before pushing (a ``stable_hash`` per push — skipped for
    line-blind policies); ``steals`` whether pops may scan peer
    queues.
    """

    name = "?"
    needs_line = False
    steals = True

    def __init__(self) -> None:
        #: Dispatch decisions that overrode the natural home because it
        #: was hot (only the rebalancing policy bumps this).
        self.rebalances = 0

    # -- static placement (the mp backend's shard map) ----------------------

    def place_lines(self, n_lines: int, n_workers: int) -> Tuple[int, ...]:
        """``owner[line]`` for every line; must partition the lines."""
        raise NotImplementedError

    # -- dynamic dispatch (task queues, real and simulated) -----------------

    def home_for(
        self,
        line: Optional[int],
        pusher: Optional[int],
        seq: int,
        queues: Sequence[Sequence],
    ) -> int:
        """The queue index this task should be pushed to."""
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------------

    @staticmethod
    def _interleaved(n_lines: int, n_workers: int) -> Tuple[int, ...]:
        """Round-robin placement: consecutive lines on distinct workers."""
        return tuple(line % n_workers for line in range(n_lines))

    @staticmethod
    def _blocked(n_lines: int, n_workers: int) -> Tuple[int, ...]:
        """Contiguous-block placement: worker ``w`` owns one dense run
        of lines, so activations that walk neighbouring lines stay on
        one worker (the locality-aware layout)."""
        return tuple(line * n_workers // n_lines for line in range(n_lines))

    @staticmethod
    def _shallowest(queues: Sequence[Sequence]) -> int:
        best, best_depth = 0, len(queues[0])
        for qi in range(1, len(queues)):
            depth = len(queues[qi])
            if depth < best_depth:
                best, best_depth = qi, depth
        return best


class RoundRobinPolicy(Policy):
    """Sequence-order dispatch, modulo placement (the legacy default)."""

    name = "round-robin"

    def place_lines(self, n_lines: int, n_workers: int) -> Tuple[int, ...]:
        return self._interleaved(n_lines, n_workers)

    def home_for(self, line, pusher, seq, queues) -> int:
        return seq % len(queues)


class AffinityPolicy(Policy):
    """Hash-line locality: one line, one queue, one worker block."""

    name = "affinity"
    needs_line = True

    def place_lines(self, n_lines: int, n_workers: int) -> Tuple[int, ...]:
        return self._blocked(n_lines, n_workers)

    def home_for(self, line, pusher, seq, queues) -> int:
        if line is None:
            return seq % len(queues)
        return line % len(queues)


class LeastLoadedPolicy(Policy):
    """Always push to the shallowest queue (ties to the lowest index)."""

    name = "least-loaded"

    def place_lines(self, n_lines: int, n_workers: int) -> Tuple[int, ...]:
        return self._interleaved(n_lines, n_workers)

    def home_for(self, line, pusher, seq, queues) -> int:
        return self._shallowest(queues)


class WorkStealingPolicy(Policy):
    """Push local, steal on empty — the paper's LIFO cache-warm shape.

    This is also exactly how the Encore simulator always dispatched
    (workers push spawned tasks to their home queue, the control
    process deals round-robin), which is why it is the simulator's
    default: the pre-policy stable metrics are preserved bit for bit.
    """

    name = "work-stealing"

    def place_lines(self, n_lines: int, n_workers: int) -> Tuple[int, ...]:
        return self._interleaved(n_lines, n_workers)

    def home_for(self, line, pusher, seq, queues) -> int:
        if pusher is None:
            return seq % len(queues)
        return pusher % len(queues)


class RebalancePolicy(AffinityPolicy):
    """Affinity routing with hot-queue spill to the least-loaded queue."""

    name = "rebalance"

    #: A home queue this deep is a candidate for shedding (and must
    #: also be more than twice the shallowest queue's depth).
    hot_depth = 8

    def home_for(self, line, pusher, seq, queues) -> int:
        home = super().home_for(line, pusher, seq, queues)
        depth = len(queues[home])
        if depth <= self.hot_depth:
            return home
        shallow = self._shallowest(queues)
        if depth > 2 * (len(queues[shallow]) + 1):
            self.rebalances += 1
            return shallow
        return home


_POLICY_CLASSES = {
    cls.name: cls
    for cls in (
        RoundRobinPolicy,
        AffinityPolicy,
        LeastLoadedPolicy,
        WorkStealingPolicy,
        RebalancePolicy,
    )
}

assert set(_POLICY_CLASSES) == set(POLICY_NAMES)
assert set(SAFE_QUEUE_MATRIX) == set(POLICY_NAMES)


def make_policy(spec) -> Policy:
    """Build a fresh policy instance from its registry name.

    Accepts an existing :class:`Policy` unchanged, so engines can take
    either a name or a preconfigured object.  Unknown names raise
    ``ValueError`` listing the registry, mirroring
    :func:`repro.engines.make_matcher`.
    """
    if isinstance(spec, Policy):
        return spec
    cls = _POLICY_CLASSES.get(spec)
    if cls is None:
        raise ValueError(
            f"unknown policy {spec!r}; expected one of {', '.join(POLICY_NAMES)}"
        )
    return cls()


def safe_queues(spec) -> int:
    """The conformance-safe threaded queue count for a policy name."""
    policy = make_policy(spec)
    return SAFE_QUEUE_MATRIX[policy.name]
