"""Task queues and the TaskCount termination counter (§3.2).

Tasks — tokens tagged with the destination node and input side — wait
on one or more central task queues, each guarded by a
:class:`~repro.parallel.locks.SpinLock`.  With multiple queues a
process pushes to the queues round-robin and pops from its *home*
queue first, scanning the others when it is empty; this is the
multiple-task-queue configuration that lifted Weaver from 3.9× to 8.2×
in Table 4-6.

``TaskCount`` is the global counter holding (tasks queued) + (tasks in
process); match is finished when it reaches zero.
"""

from __future__ import annotations

from typing import Any, List, Optional

from .hooks import yield_point
from .locks import LockStats, SpinLock
from ..obs import events as _obs


class TaskCount:
    """The paper's global activity counter with its own spin lock."""

    def __init__(self) -> None:
        self._lock = SpinLock(label="taskcount")
        self._value = 0
        #: Lowest value ever observed by a decrement — an invariant probe
        #: for the schedule harness (must never go below 0).
        self.min_value = 0

    def increment(self, n: int = 1) -> None:
        yield_point("taskcount_inc", self)
        with self._lock:
            self._value += n

    def decrement(self, n: int = 1) -> int:
        yield_point("taskcount_dec", self)
        with self._lock:
            self._value -= n
            value = self._value
            if value < self.min_value:
                self.min_value = value
        if value < 0:
            raise RuntimeError("TaskCount went negative")
        return value

    @property
    def value(self) -> int:
        return self._value

    @property
    def zero(self) -> bool:
        return self._value == 0

    @property
    def holder(self) -> Optional[str]:
        """Thread currently inside the counter's spin lock (None unless
        :data:`repro.parallel.locks.HOLDER_TRACKING` is on)."""
        return self._lock.holder


class TaskQueueSet:
    """``n_queues`` LIFO task queues with per-queue spin locks.

    LIFO (push/pop at the tail) matches the paper's description and
    keeps hot tokens cache-warm; it also bounds queue growth the same
    way the C implementation's stack-like queues did.
    """

    def __init__(self, n_queues: int = 1) -> None:
        if n_queues < 1:
            raise ValueError("need at least one task queue")
        self.n_queues = n_queues
        self._queues: List[List[Any]] = [[] for _ in range(n_queues)]
        self._locks = [SpinLock(label="queue") for _ in range(n_queues)]
        #: Read-only view of the queue lists for dispatch policies —
        #: only ``len(views[i])`` may be read without a lock.
        self.views = self._queues
        # Conservation counters for the policy layer, always on (plain
        # int bumps under the GIL; racy lost updates are possible under
        # free threading but they only feed heuristics and tests that
        # drive the queues single-threaded).
        self.pushed = 0
        self.popped = 0
        #: Pops satisfied from a non-home queue — the steal counter.
        self.stolen = 0
        #: Deepest any single queue has ever been — the imbalance probe.
        self.max_depth = 0

    def push(self, task: Any, home: int = 0) -> None:
        """Push ``task``; ``home`` selects the queue (mod n_queues)."""
        yield_point("queue_push", task)
        qi = home % self.n_queues
        with self._locks[qi]:
            self._queues[qi].append(task)
            depth = len(self._queues[qi])
        self.pushed += 1
        if depth > self.max_depth:
            self.max_depth = depth
        if _obs.ENABLED:
            _obs.count("queue.push")
            if depth * self.n_queues > 2 * len(self):
                # This queue holds more than twice its fair share —
                # the imbalance counter the rebalancing policy exists
                # to keep near zero.
                _obs.count("queue.push_imbalanced")

    def pop(self, home: int = 0, steal: bool = True) -> Optional[Any]:
        """Pop from the home queue, else scan the others; None if all empty.

        ``steal=False`` restricts the pop to the home queue (a policy
        that forbids stealing); the default scans every queue so no
        task can be stranded.
        """
        yield_point("queue_pop", home)
        n = self.n_queues if steal else 1
        for offset in range(n):
            qi = (home + offset) % self.n_queues
            queue = self._queues[qi]
            if not queue:
                # The "test" half: peek without the lock; skip queues
                # that look empty.
                continue
            with self._locks[qi]:
                if queue:
                    self.popped += 1
                    if offset:
                        self.stolen += 1
                    if _obs.ENABLED:
                        _obs.count("queue.pop")
                        if offset:
                            _obs.count("queue.pop_stolen")
                    return queue.pop()
        if _obs.ENABLED:
            _obs.count("queue.pop_empty")
        return None

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues)

    def depths(self) -> List[int]:
        """Instantaneous per-queue depths, lock-free (a racy read is
        fine for the watchdog's stall probe)."""
        return [len(q) for q in self._queues]

    def holders(self) -> dict:
        """Currently-held queue locks (empty unless HOLDER_TRACKING)."""
        return {
            f"queue[{i}]": lock.holder
            for i, lock in enumerate(self._locks)
            if lock.holder is not None
        }

    def lock_stats(self) -> LockStats:
        merged = LockStats()
        for lock in self._locks:
            merged.merge(lock.stats)
        return merged
