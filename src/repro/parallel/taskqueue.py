"""Task queues and the TaskCount termination counter (§3.2).

Tasks — tokens tagged with the destination node and input side — wait
on one or more central task queues, each guarded by a
:class:`~repro.parallel.locks.SpinLock`.  With multiple queues a
process pushes to the queues round-robin and pops from its *home*
queue first, scanning the others when it is empty; this is the
multiple-task-queue configuration that lifted Weaver from 3.9× to 8.2×
in Table 4-6.

``TaskCount`` is the global counter holding (tasks queued) + (tasks in
process); match is finished when it reaches zero.
"""

from __future__ import annotations

from typing import Any, List, Optional

from .hooks import yield_point
from .locks import LockStats, SpinLock
from ..obs import events as _obs


class TaskCount:
    """The paper's global activity counter with its own spin lock."""

    def __init__(self) -> None:
        self._lock = SpinLock(label="taskcount")
        self._value = 0
        #: Lowest value ever observed by a decrement — an invariant probe
        #: for the schedule harness (must never go below 0).
        self.min_value = 0

    def increment(self, n: int = 1) -> None:
        yield_point("taskcount_inc", self)
        with self._lock:
            self._value += n

    def decrement(self, n: int = 1) -> int:
        yield_point("taskcount_dec", self)
        with self._lock:
            self._value -= n
            value = self._value
            if value < self.min_value:
                self.min_value = value
        if value < 0:
            raise RuntimeError("TaskCount went negative")
        return value

    @property
    def value(self) -> int:
        return self._value

    @property
    def zero(self) -> bool:
        return self._value == 0

    @property
    def holder(self) -> Optional[str]:
        """Thread currently inside the counter's spin lock (None unless
        :data:`repro.parallel.locks.HOLDER_TRACKING` is on)."""
        return self._lock.holder


class TaskQueueSet:
    """``n_queues`` LIFO task queues with per-queue spin locks.

    LIFO (push/pop at the tail) matches the paper's description and
    keeps hot tokens cache-warm; it also bounds queue growth the same
    way the C implementation's stack-like queues did.
    """

    def __init__(self, n_queues: int = 1) -> None:
        if n_queues < 1:
            raise ValueError("need at least one task queue")
        self.n_queues = n_queues
        self._queues: List[List[Any]] = [[] for _ in range(n_queues)]
        self._locks = [SpinLock(label="queue") for _ in range(n_queues)]

    def push(self, task: Any, home: int = 0) -> None:
        """Push ``task``; ``home`` selects the queue (mod n_queues)."""
        yield_point("queue_push", task)
        if _obs.ENABLED:
            _obs.count("queue.push")
        qi = home % self.n_queues
        with self._locks[qi]:
            self._queues[qi].append(task)

    def pop(self, home: int = 0) -> Optional[Any]:
        """Pop from the home queue, else scan the others; None if all empty."""
        yield_point("queue_pop", home)
        n = self.n_queues
        for offset in range(n):
            qi = (home + offset) % n
            queue = self._queues[qi]
            if not queue:
                # The "test" half: peek without the lock; skip queues
                # that look empty.
                continue
            with self._locks[qi]:
                if queue:
                    if _obs.ENABLED:
                        _obs.count("queue.pop")
                        if offset:
                            _obs.count("queue.pop_stolen")
                    return queue.pop()
        if _obs.ENABLED:
            _obs.count("queue.pop_empty")
        return None

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues)

    def depths(self) -> List[int]:
        """Instantaneous per-queue depths, lock-free (a racy read is
        fine for the watchdog's stall probe)."""
        return [len(q) for q in self._queues]

    def holders(self) -> dict:
        """Currently-held queue locks (empty unless HOLDER_TRACKING)."""
        return {
            f"queue[{i}]": lock.holder
            for i, lock in enumerate(self._locks)
            if lock.holder is not None
        }

    def lock_stats(self) -> LockStats:
        merged = LockStats()
        for lock in self._locks:
            merged.merge(lock.stats)
        return merged
