"""policyck: the differential policy-conformance battery.

The scheduling-policy analogue of :mod:`repro.corgi.diffcheck`
(corgick) and :mod:`repro.schedck.runner` — the proof obligation for
:mod:`repro.parallel.policy` is that a policy may change *where* match
work runs, never *what* the recognize-act cycle does.  Each battery
case runs one bundled conformance program on one parallel engine under
one dispatch/placement policy and requires the complete firing trace
(cycle, production, timetags), final working memory, ``write`` output,
halt flag, and cycle count to be byte-identical to the sequential
reference run.

Threaded cases run each policy at its conformance-validated queue
count (:data:`repro.parallel.policy.SAFE_QUEUE_MATRIX` — the
per-policy successor of the old blanket ``n_queues=1`` pin) unless an
explicit ``n_queues`` override is given; mp cases exercise the
placement half of the same policy object (the shard owners table).

Reports are byte-stable (racy telemetry like steal counts is kept out
of ``format()``), and every FAIL line carries a paste-ready
``python -m repro policyck`` replay command, mirroring the schedck and
corgick sweep UX.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..programs import blocks, crossfire, monkey, negchain, rubik, tourney, weaver
from .policy import POLICY_NAMES, SAFE_QUEUE_MATRIX, make_policy

#: Program name -> OPS5 source factory: the same eight workloads, at
#: the same sizes, as the cross-engine conformance suite
#: (``tests/conformance``) — every beta node kind, both recursion
#: styles, two cube scrambles, and the two adversarial fixtures.
PROGRAMS: Dict[str, Callable[[], str]] = {
    "blocks": lambda: blocks.source(),
    "monkey": lambda: monkey.source(),
    "tourney": lambda: tourney.source(n_teams=6, n_rounds=7),
    "weaver": lambda: weaver.source(grid=4, n_nets=1),
    "rubik": lambda: rubik.source(n_moves=4, seed=1988),
    "cube": lambda: rubik.source(n_moves=3, seed=7),
    "crossfire": lambda: crossfire.source(n_items=7),
    "negchain": lambda: negchain.source(n_chains=5),
}

#: The engines a policy can drive (sequential and corgi take none).
POLICY_ENGINES: Tuple[str, ...] = ("threaded", "mp")

MAX_CYCLES = 5000


def _render_trace(result) -> str:
    """One canonical text rendering of a complete firing trace (the
    same rendering the conformance suite asserts on)."""
    return "\n".join(
        f"{f.cycle} {f.production} {','.join(map(str, f.timetags))}"
        for f in result.firings
    )


def _wm_snapshot(interp) -> tuple:
    return tuple(sorted(
        (wme.klass, wme.timetag, wme.attrs) for wme in interp.wm
    ))


def _run(source: str, engine: str, engine_opts: dict) -> dict:
    from ..ops5.interpreter import Interpreter
    from ..ops5.parser import parse_program

    interp = Interpreter(parse_program(source), engine=engine, engine_opts=engine_opts)
    try:
        result = interp.run(max_cycles=MAX_CYCLES)
        return {
            "trace": _render_trace(result),
            "wm": _wm_snapshot(interp),
            "output": tuple(result.output),
            "halted": result.halted,
            "cycles": result.cycles,
        }
    finally:
        interp.close()


@dataclass
class CaseResult:
    """One (program, engine, policy) differential run."""

    program: str
    engine: str
    policy: str
    n_queues: int                 # 0 for mp (no queue axis)
    mismatches: List[str] = field(default_factory=list)
    cycles: int = 0

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def describe(self) -> str:
        queues = f" queues={self.n_queues}" if self.n_queues else ""
        return f"policy={self.policy} engine={self.engine}{queues} program={self.program}"


@dataclass
class BatteryResult:
    """Aggregate of one policyck battery; ``format()`` is byte-stable."""

    cases: List[CaseResult] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(case.ok for case in self.cases)

    @property
    def failures(self) -> List[CaseResult]:
        return [case for case in self.cases if not case.ok]

    def format(self) -> str:
        lines = [
            f"policyck battery: {len(self.cases)} cases, "
            f"{len(self.failures)} failing, {len(self.skipped)} skipped"
        ]
        for case in self.cases:
            status = "OK  " if case.ok else "FAIL"
            lines.append(f"  {status} {case.describe()} cycles={case.cycles}")
            for mismatch in case.mismatches:
                lines.append(f"       {mismatch}")
            if not case.ok:
                lines.append(
                    f"       replay: python -m repro policyck"
                    f" --policies {case.policy}"
                    f" --engines {case.engine}"
                    f" --programs {case.program}"
                )
        for reason in self.skipped:
            lines.append(f"  SKIP {reason}")
        return "\n".join(lines)


def run_case(
    program: str,
    engine: str,
    policy: str,
    reference: dict,
    n_workers: int = 2,
    n_queues: Optional[int] = None,
) -> CaseResult:
    """One differential case; divergence comes back as mismatches."""
    if engine not in POLICY_ENGINES:
        raise ValueError(
            f"engine {engine!r} takes no policy; expected one of "
            f"{', '.join(POLICY_ENGINES)}"
        )
    pol = make_policy(policy)  # validates the name
    if engine == "threaded":
        queues = n_queues if n_queues is not None else SAFE_QUEUE_MATRIX[pol.name]
        opts = {"n_workers": n_workers, "n_queues": queues, "policy": pol.name}
    else:
        queues = 0
        opts = {"n_workers": n_workers, "policy": pol.name}
    case = CaseResult(
        program=program, engine=engine, policy=pol.name, n_queues=queues
    )
    try:
        got = _run(PROGRAMS[program](), engine, opts)
    except Exception as exc:  # noqa: BLE001 - reported, battery continues
        case.mismatches.append(f"[engine_error] {exc!r}")
        return case
    case.cycles = got["cycles"]
    for fieldname in ("trace", "wm", "output", "halted", "cycles"):
        if got[fieldname] != reference[fieldname]:
            case.mismatches.append(
                f"[{fieldname}] differs from sequential reference"
            )
    return case


def run_battery(
    programs: Optional[Sequence[str]] = None,
    engines: Optional[Sequence[str]] = None,
    policies: Optional[Sequence[str]] = None,
    n_workers: int = 2,
    n_queues: Optional[int] = None,
    on_case: Optional[Callable[[CaseResult], None]] = None,
) -> BatteryResult:
    """The full differential matrix: policies x engines x programs.

    ``engines`` defaults to every policy-capable engine the platform
    supports (mp needs fork; an unsupported engine becomes a SKIP
    entry, not an error).  The sequential reference is computed once
    per program and shared across the matrix.
    """
    from ..engines import mp_supported

    program_names = list(programs) if programs is not None else sorted(PROGRAMS)
    policy_names = list(policies) if policies is not None else list(POLICY_NAMES)
    result = BatteryResult()

    if engines is None:
        engine_names = []
        for name in POLICY_ENGINES:
            if name == "mp" and not mp_supported():
                result.skipped.append("engine=mp (needs the fork start method)")
                continue
            engine_names.append(name)
    else:
        engine_names = list(engines)

    for name in program_names:
        if name not in PROGRAMS:
            raise ValueError(
                f"unknown program {name!r}; expected one of "
                f"{', '.join(sorted(PROGRAMS))}"
            )

    references: Dict[str, dict] = {}
    for program in program_names:
        references[program] = _run(PROGRAMS[program](), "sequential", {})

    for policy in policy_names:
        for engine in engine_names:
            for program in program_names:
                case = run_case(
                    program,
                    engine,
                    policy,
                    references[program],
                    n_workers=n_workers,
                    n_queues=n_queues,
                )
                result.cases.append(case)
                if on_case is not None:
                    on_case(case)
    return result
